(** The remaining programs: rsp (EVM-block-flavored precompile-heavy
    workload), zkvm-mnist (fixed-point NN training on 7x7 digits),
    regex-match (table-driven DFA), merkle (inclusion proof), and the
    three small programs factorial / loop-sum / tailcall.

    [tailcall] is (a superset of) the paper's Fig. 10 program: a u64
    work loop called from an outer loop, where inlining triggers
    register-pair spills. *)

open Zkopt_ir
module B = Builder
open Kern

let () =
  Workload.register ~uses_precompiles:true ~suite:"rsp" "rsp" (fun size ->
      (* Reth-Succinct-Processor stand-in: a block of synthetic
         transactions, each verifying a signature, hashing its payload
         into a state trie root, and running a little interpreter-style
         bookkeeping loop (EVM gas accounting). *)
      let txs = match size with Workload.Quick -> 2 | Full -> 12 in
      program "rsp"
        ~globals:
          [ ("trie", 64); ("payload", 16); ("sigbuf", 8); ("key", 8);
            ("balances", 32); ("kstate", 50) ]
        ~body:(fun _m b ->
          let trie = Value.Glob "trie" and payload = Value.Glob "payload" in
          let balances = Value.Glob "balances" and kstate = Value.Glob "kstate" in
          fill_lcg b (Value.Glob "key") ~n:8 ~seed:3;
          fill_lcg b balances ~n:32 ~seed:9;
          let gas = B.var b i32 (B.imm 0) in
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm txs) (fun tx ->
              (* payload derived from the tx index *)
              B.for_ b ~from:(B.imm 0) ~bound:(B.imm 16) (fun k ->
                  st b payload k (B.add b (B.mul b tx (B.imm 977)) k));
              (* signature check (simulated precompile; tag not valid, the
                 result still feeds gas accounting deterministically) *)
              let ok =
                B.precompilev b "ecdsa_verify"
                  [ payload; B.imm 16; Value.Glob "sigbuf"; Value.Glob "key" ]
              in
              (* keccak the payload into the trie *)
              B.for_ b ~from:(B.imm 0) ~bound:(B.imm 16) (fun k ->
                  st b kstate k (B.xor b (ld b kstate k) (ld b payload k)));
              B.precompile b "keccakf" [ kstate ];
              let slot = B.and_ b (ld b kstate (B.imm 0)) (B.imm 63) in
              st b trie slot (B.xor b (ld b trie slot) (ld b kstate (B.imm 1)));
              (* interpreter-ish gas loop: balance transfers *)
              B.for_ b ~from:(B.imm 0) ~bound:(B.imm 24) (fun step ->
                  let from_ = B.and_ b (B.add b step tx) (B.imm 31) in
                  let to_ = B.and_ b (B.mul b step (B.imm 7)) (B.imm 31) in
                  let amt = B.and_ b (ld b kstate step) (B.imm 1023) in
                  st b balances from_ (B.sub b (ld b balances from_) amt);
                  st b balances to_ (B.add b (ld b balances to_) amt);
                  B.set b i32 gas
                    (B.add b (Value.Reg gas) (B.add b (B.imm 21) ok))));
          let r1 = fold_array b trie ~n:64 in
          let r2 = fold_array b balances ~n:32 in
          combine b (combine b r1 r2) (Value.Reg gas)))

let () =
  Workload.register ~suite:"misc" "zkvm-mnist" (fun size ->
      (* one-layer perceptron trained on synthetic 7x7 digit images,
         fixed-point arithmetic (the paper downsamples MNIST to 7x7) *)
      let pixels = 49 in
      let classes = 10 in
      let samples = match size with Workload.Quick -> 6 | Full -> 40 in
      let epochs = match size with Workload.Quick -> 1 | Full -> 3 in
      program "zkvm-mnist"
        ~globals:
          [ ("weights", pixels * classes); ("img", pixels); ("scores", classes) ]
        ~body:(fun _m b ->
          let w = Value.Glob "weights" and img = Value.Glob "img" in
          let scores = Value.Glob "scores" in
          fill_lcg b w ~n:(pixels * classes) ~seed:19;
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm epochs) (fun _e ->
              B.for_ b ~from:(B.imm 0) ~bound:(B.imm samples) (fun s ->
                  (* synthesize the image and its label *)
                  let label = B.urem b s (B.imm classes) in
                  B.for_ b ~from:(B.imm 0) ~bound:(B.imm pixels) (fun p ->
                      let v =
                        B.and_ b
                          (B.mul b (B.add b (B.mul b s (B.imm 53)) p) (B.imm 2654435761))
                          (B.imm 0xFFFF)
                      in
                      st b img p v);
                  (* forward: scores = W . img *)
                  B.for_ b ~from:(B.imm 0) ~bound:(B.imm classes) (fun c_ ->
                      let acc = B.var b i32 (B.imm 0) in
                      B.for_ b ~from:(B.imm 0) ~bound:(B.imm pixels) (fun p ->
                          let wi = B.add b (B.mul b c_ (B.imm pixels)) p in
                          B.set b i32 acc
                            (B.add b (Value.Reg acc) (fxmul b (ld b w wi) (ld b img p))));
                      st b scores c_ (Value.Reg acc));
                  (* argmax *)
                  let best = B.var b i32 (B.imm 0) in
                  let besti = B.var b i32 (B.imm 0) in
                  B.for_ b ~from:(B.imm 0) ~bound:(B.imm classes) (fun c_ ->
                      let better = B.icmp b Instr.Sgt (ld b scores c_) (Value.Reg best) in
                      B.if_ b better
                        ~then_:(fun () ->
                          B.set b i32 best (ld b scores c_);
                          B.set b i32 besti c_)
                        ());
                  (* perceptron update on mistakes *)
                  let wrong = B.icmp b Instr.Ne (Value.Reg besti) label in
                  B.if_ b wrong
                    ~then_:(fun () ->
                      B.for_ b ~from:(B.imm 0) ~bound:(B.imm pixels) (fun p ->
                          let up = B.add b (B.mul b label (B.imm pixels)) p in
                          let dn = B.add b (B.mul b (Value.Reg besti) (B.imm pixels)) p in
                          let delta = B.ashr b (ld b img p) (B.imm 4) in
                          st b w up (B.add b (ld b w up) delta);
                          st b w dn (B.sub b (ld b w dn) delta)))
                    ()));
          fold_array b w ~n:(pixels * classes)))

let () =
  Workload.register ~suite:"misc" "regex-match" (fun size ->
      (* table-driven DFA for (ab|ba)*c over a synthetic byte stream *)
      let len = match size with Workload.Quick -> 200 | Full -> 4000 in
      let states = 4 in
      let alphabet = 4 in
      program "regex-match"
        ~globals:[ ("delta", states * alphabet); ("text", len) ]
        ~body:(fun _m b ->
          let delta = Value.Glob "delta" and text = Value.Glob "text" in
          (* transition table: s0 -a-> s1, s0 -b-> s2, s1 -b-> s0,
             s2 -a-> s0, s0 -c-> s3 (accept), others -> dead 3.. use 3 as
             dead+accept sentinel variants *)
          let set s ch v = st b delta (B.imm ((s * alphabet) + ch)) (B.imm v) in
          set 0 0 1; set 0 1 2; set 0 2 3; set 0 3 0;
          set 1 0 1; set 1 1 0; set 1 2 1; set 1 3 1;
          set 2 0 0; set 2 1 2; set 2 2 2; set 2 3 2;
          set 3 0 3; set 3 1 3; set 3 2 3; set 3 3 3;
          fill_lcg b text ~n:len ~seed:37;
          let matches = B.var b i32 (B.imm 0) in
          let state = B.var b i32 (B.imm 0) in
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm len) (fun i ->
              let ch = B.and_ b (ld b text i) (B.imm (alphabet - 1)) in
              let idx = B.add b (B.mul b (Value.Reg state) (B.imm alphabet)) ch in
              B.set b i32 state (ld b delta idx);
              let accept = B.icmp b Instr.Eq (Value.Reg state) (B.imm 3) in
              B.if_ b accept
                ~then_:(fun () ->
                  B.set b i32 matches (B.add b (Value.Reg matches) (B.imm 1));
                  B.set b i32 state (B.imm 0))
                ());
          Value.Reg matches))

let () =
  Workload.register ~uses_precompiles:true ~suite:"misc" "merkle" (fun size ->
      (* verify inclusion proofs in a depth-d Merkle tree built with the
         sha256 precompile *)
      let depth = match size with Workload.Quick -> 4 | Full -> 10 in
      let proofs = match size with Workload.Quick -> 2 | Full -> 6 in
      program "merkle"
        ~globals:[ ("node", 8); ("sibling", 8); ("blk", 16); ("acc", 1) ]
        ~body:(fun _m b ->
          let node = Value.Glob "node" and sibling = Value.Glob "sibling" in
          let blk = Value.Glob "blk" and acc = Value.Glob "acc" in
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm proofs) (fun p ->
              (* leaf hash from the leaf index *)
              fill_lcg b node ~n:8 ~seed:43;
              st b node (B.imm 0) p;
              B.for_ b ~from:(B.imm 0) ~bound:(B.imm depth) (fun lvl ->
                  (* derive the sibling for this level *)
                  B.for_ b ~from:(B.imm 0) ~bound:(B.imm 8) (fun k ->
                      st b sibling k (B.add b (B.mul b lvl (B.imm 131)) k));
                  (* order by the path bit *)
                  let bit = B.and_ b (B.lshr b p lvl) (B.imm 1) in
                  let left_is_node = B.icmp b Instr.Eq bit (B.imm 0) in
                  B.for_ b ~from:(B.imm 0) ~bound:(B.imm 8) (fun k ->
                      let nv = B.load b (B.addr b node ~index:k) in
                      let sv = B.load b (B.addr b sibling ~index:k) in
                      st b blk k (B.select b left_is_node nv sv);
                      st b blk (B.add b k (B.imm 8)) (B.select b left_is_node sv nv));
                  (* node := H(blk) *)
                  Array.iteri
                    (fun k w -> st b node (B.imm k) (B.imm (Int32.to_int w)))
                    Extern.sha256_init_state;
                  B.precompile b "sha256_compress" [ node; blk ]);
              st b acc (B.imm 0)
                (B.xor b (ld b acc (B.imm 0)) (ld b node (B.imm 0))));
          ld b acc (B.imm 0)))

let () =
  Workload.register ~suite:"misc" "factorial" (fun size ->
      (* recursive factorial mod p: the classic tailcallelim subject *)
      let n = match size with Workload.Quick -> 40 | Full -> 2500 in
      let m = Modul.create () in
      ignore
        (B.define m "fact" ~params:[ i32; i32 ] ~ret:i32 (fun b ps ->
             let k = List.nth ps 0 and acc = List.nth ps 1 in
             let base = B.icmp b Instr.Sle k (B.imm 1) in
             B.if_ b base ~then_:(fun () -> B.ret b (Some acc)) ();
             let acc' = B.urem b (B.mul b acc k) (B.imm 1000003) in
             let r = B.callv b "fact" [ B.sub b k (B.imm 1); acc' ] in
             B.ret b (Some r)));
      ignore
        (B.define m "main" ~params:[] ~ret:i32 (fun b _ ->
             let total = B.var b i32 (B.imm 0) in
             B.for_ b ~from:(B.imm 1) ~bound:(B.imm 32) (fun i ->
                 let r = B.callv b "fact" [ B.urem b (B.mul b i (B.imm 97)) (B.imm n); B.imm 1 ] in
                 B.set b i32 total (B.xor b (Value.Reg total) r));
             B.ret b (Some (Value.Reg total))));
      m)

let () =
  Workload.register ~suite:"misc" "loop-sum" (fun size ->
      (* the paper's loop-heavy micro: sum with a data-dependent branch *)
      let n = match size with Workload.Quick -> 500 | Full -> 30000 in
      program "loop-sum" ~globals:[]
        ~body:(fun _m b ->
          let s = B.var b i32 (B.imm 0) in
          let x = B.var b i32 (B.imm 123456789) in
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
              B.set b i32 x
                (B.add b (B.mul b (Value.Reg x) (B.imm 1103515245)) (B.imm 12345));
              let odd = B.and_ b (Value.Reg x) (B.imm 1) in
              let is_odd = B.icmp b Instr.Ne odd (B.imm 0) in
              B.if_ b is_odd
                ~then_:(fun () -> B.set b i32 s (B.add b (Value.Reg s) i))
                ~else_:(fun () ->
                  B.set b i32 s (B.xor b (Value.Reg s) (Value.Reg x)))
                ());
          Value.Reg s))

let () =
  Workload.register ~suite:"misc" "tailcall" (fun size ->
      (* Fig. 10: u64 work() called from a loop; inlining forces three
         u64 values to coexist and spills register pairs *)
      let outer = match size with Workload.Quick -> 30 | Full -> 1000 in
      let m = Modul.create () in
      ignore
        (B.define m "work" ~params:[ i64 ] ~ret:i64 (fun b ps ->
             let x = List.nth ps 0 in
             let sum = B.var b i64 x in
             B.for_ ~ty:i64 b ~from:(B.imm 0) ~bound:(B.imm 100) (fun j ->
                 let t = B.mul ~ty:i64 b (Value.Reg sum) (B.imm 31) in
                 B.set b i64 sum (B.add ~ty:i64 b t j));
             B.ret b (Some (Value.Reg sum))));
      ignore
        (B.define m "main" ~params:[] ~ret:i32 (fun b _ ->
             let acc = B.var b i64 (B.imm 0) in
             B.for_ ~ty:i64 b ~from:(B.imm 0) ~bound:(B.imm outer) (fun i ->
                 let r = B.callv b "work" [ i ] in
                 B.set b i64 acc (B.xor ~ty:i64 b (Value.Reg acc) r));
             let lo = B.trunc b (Value.Reg acc) in
             let hi = B.trunc b (B.lshr ~ty:i64 b (Value.Reg acc) (B.imm 32)) in
             B.ret b (Some (B.xor b lo hi))));
      m)

let registered = true
