(** Cryptography-flavored workloads: the a16z suite (sha2, sha3, bigmem),
    the Succinct suite (ecdsa-verify, eddsa-verify, keccak256, fibonacci),
    the chained hashing variants, and the larger in-guest sha256.

    Precompile-backed programs call the zkVM's accelerated circuits; the
    in-guest variants run the full compression in IR (via the runtime's
    [sha256_compress_soft]), giving the paper's contrast between
    optimizable guest code and fixed-cost precompiles (Fig. 6b). *)

open Zkopt_ir
module B = Builder
open Kern

let reg ?uses_precompiles ~suite name ~globals build =
  Workload.register ?uses_precompiles ~suite name (fun size ->
      program name ~globals:(globals size) ~body:(fun m b -> build m b size))

let iters q f = function Workload.Quick -> q | Full -> f

(* hash [blocks] 16-word blocks derived from an LCG, with the given
   per-block hasher *)
let hash_stream b ~blocks ~state ~buf ~hash_block =
  fill_lcg b buf ~n:16 ~seed:97;
  B.for_ b ~from:(B.imm 0) ~bound:(B.imm blocks) (fun i ->
      (* vary the block contents *)
      st b buf (B.and_ b i (B.imm 15)) i;
      hash_block ());
  fold_array b state ~n:8

let sha_globals _ = [ ("state", 8); ("buf", 16) ]

let () =
  (* a16z: sha2 via precompile *)
  reg ~uses_precompiles:true ~suite:"a16z" "sha2-bench" ~globals:sha_globals
    (fun _m b size ->
      let state = Value.Glob "state" and buf = Value.Glob "buf" in
      hash_stream b ~blocks:(iters 4 48 size) ~state ~buf ~hash_block:(fun () ->
          B.precompile b "sha256_compress" [ state; buf ]));
  (* a16z: sha3 (keccak) via precompile; state is 25 lanes = 50 words *)
  reg ~uses_precompiles:true ~suite:"a16z" "sha3-bench"
    ~globals:(fun _ -> [ ("kstate", 50) ])
    (fun _m b size ->
      let kstate = Value.Glob "kstate" in
      fill_lcg b kstate ~n:50 ~seed:61;
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm (iters 4 40 size)) (fun i ->
          st b kstate (B.and_ b i (B.imm 31)) i;
          B.precompile b "keccakf" [ kstate ]);
      fold_array b kstate ~n:50);
  (* a16z: allocation/memory-heavy *)
  reg ~suite:"a16z" "bigmem"
    ~globals:(fun size ->
      let n = iters 512 8192 size in
      [ ("heap", n) ])
    (fun _m b size ->
      let n = iters 512 8192 size in
      let heap = Value.Glob "heap" in
      (* strided touches defeat locality and exercise paging *)
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm 4) (fun pass ->
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
              let idx = B.and_ b (B.mul b i (B.imm 769)) (B.imm (n - 1)) in
              st b heap idx (B.add b (ld b heap idx) (B.add b pass (B.imm 1)))));
      fold_array b heap ~n)

let sig_globals _ = [ ("msg", 16); ("sigbuf", 8); ("key", 8); ("acc", 1) ]

(* simulated signature flow: derive a valid tag in-guest with the hash
   precompile (mirroring how test vectors are produced), then verify *)
let verify_bench precompile_name tag_seed b size =
  let msg = Value.Glob "msg" and sigbuf = Value.Glob "sigbuf" in
  let key = Value.Glob "key" and acc = Value.Glob "acc" in
  fill_lcg b msg ~n:16 ~seed:71;
  fill_lcg b key ~n:8 ~seed:73;
  B.for_ b ~from:(B.imm 0) ~bound:(B.imm (iters 2 10 size)) (fun i ->
      st b msg (B.imm 0) i;
      (* recompute the expected tag exactly as Extern does: digest of
         separator :: msg ++ key with the trivial padding *)
      B.store b ~addr:(B.addr b sigbuf) (B.imm 0);
      (* the guest cannot compute the tag cheaply; it receives it as
         public input.  We model that by computing it with the verifier
         precompile's dual: first call verify with a zero tag (fails),
         then with the true tag produced by hashing in-guest. *)
      let bad = B.precompilev b precompile_name [ msg; B.imm 16; sigbuf; key ] in
      (* derive the true tag in-guest using the soft hash over
         (separator, msg, key, length) to match Extern.digest_words *)
      let st8 = B.alloca b 32 in
      let blk = B.alloca b 64 in
      Array.iteri
        (fun k w ->
          B.store b ~addr:(B.addr b st8 ~index:(B.imm k))
            (B.imm (Int32.to_int w)))
        Extern.sha256_init_state;
      (* block = sep :: msg[0..14] *)
      B.store b ~addr:(B.addr b blk) (B.imm (Int32.to_int tag_seed));
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm 15) (fun k ->
          let v = ld b msg k in
          B.store b ~addr:(B.addr b blk ~index:(B.add b k (B.imm 1))) v);
      B.call b "sha256_compress_soft" [ st8; blk ];
      (* second block: msg[15], key[0..7], length marker 25, zeros *)
      B.call b "memset_w" [ blk; B.imm 0; B.imm 16 ];
      B.store b ~addr:(B.addr b blk) (ld b msg (B.imm 15));
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm 8) (fun k ->
          B.store b ~addr:(B.addr b blk ~index:(B.add b k (B.imm 1))) (ld b key k));
      B.store b ~addr:(B.addr b blk ~index:(B.imm 9)) (B.imm 25);
      B.call b "sha256_compress_soft" [ st8; blk ];
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm 8) (fun k ->
          st b sigbuf k (B.load b (B.addr b st8 ~index:k)));
      let good = B.precompilev b precompile_name [ msg; B.imm 16; sigbuf; key ] in
      st b acc (B.imm 0)
        (B.add b (ld b acc (B.imm 0))
           (B.add b (B.shl b good (B.imm 1)) bad)));
  ld b acc (B.imm 0)

let () =
  reg ~uses_precompiles:true ~suite:"succinct" "ecdsa-verify"
    ~globals:sig_globals (fun _m b size ->
      verify_bench "ecdsa_verify" 0x0ecd5a01l b size);
  reg ~uses_precompiles:true ~suite:"succinct" "eddsa-verify"
    ~globals:sig_globals (fun _m b size ->
      verify_bench "ed25519_verify" 0x0ed25519l b size);
  reg ~uses_precompiles:true ~suite:"succinct" "keccak256"
    ~globals:(fun _ -> [ ("kstate", 50); ("input", 64) ])
    (fun _m b size ->
      (* absorb 17-lane-rate blocks of input, permute via precompile *)
      let kstate = Value.Glob "kstate" and input = Value.Glob "input" in
      fill_lcg b input ~n:64 ~seed:83;
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm (iters 3 24 size)) (fun blk ->
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm 34) (fun w ->
              let iv = B.and_ b (B.add b w (B.mul b blk (B.imm 7))) (B.imm 63) in
              st b kstate w (B.xor b (ld b kstate w) (ld b input iv)));
          B.precompile b "keccakf" [ kstate ]);
      fold_array b kstate ~n:8);
  reg ~suite:"succinct" "fibonacci"
    ~globals:(fun _ -> [])
    (fun _m b size ->
      (* iterative fibonacci with a modulus: the div/rem cost-model
         subject of Fig. 13's headline win *)
      let n = iters 600 12000 size in
      let x = B.var b i32 (B.imm 0) in
      let y = B.var b i32 (B.imm 1) in
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun _ ->
          let s = B.add b (Value.Reg x) (Value.Reg y) in
          let s = B.urem b s (B.imm 7919) in
          B.set b i32 x (Value.Reg y);
          B.set b i32 y s);
      Value.Reg y)

(* chained hashing (each output feeds the next input) *)
let () =
  reg ~uses_precompiles:true ~suite:"misc" "sha2-chain" ~globals:sha_globals
    (fun _m b size ->
      let state = Value.Glob "state" and buf = Value.Glob "buf" in
      fill_lcg b buf ~n:16 ~seed:89;
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm (iters 4 40 size)) (fun _ ->
          B.precompile b "sha256_compress" [ state; buf ];
          (* feed the state back into the next block *)
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm 8) (fun k ->
              st b buf k (B.load b (B.addr b state ~index:k))));
      fold_array b state ~n:8);
  reg ~uses_precompiles:true ~suite:"misc" "sha3-chain"
    ~globals:(fun _ -> [ ("kstate", 50) ])
    (fun _m b size ->
      let kstate = Value.Glob "kstate" in
      fill_lcg b kstate ~n:50 ~seed:91;
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm (iters 4 32 size)) (fun _ ->
          B.precompile b "keccakf" [ kstate ];
          st b kstate (B.imm 0)
            (B.xor b (ld b kstate (B.imm 0)) (ld b kstate (B.imm 49))));
      fold_array b kstate ~n:50);
  (* the fully in-guest SHA-256 (no precompile): heavy optimizable code *)
  reg ~suite:"misc" "sha256" ~globals:sha_globals (fun _m b size ->
      let state = Value.Glob "state" and buf = Value.Glob "buf" in
      Array.iteri
        (fun k w -> st b state (B.imm k) (B.imm (Int32.to_int w)))
        Extern.sha256_init_state;
      let blocks = iters 2 10 size in
      hash_stream b ~blocks ~state ~buf ~hash_block:(fun () ->
          B.call b "sha256_compress_soft" [ state; buf ]))
