(** The three SPEC CPU 2017 stand-ins the paper uses (605.mcf, 619.lbm,
    631.deepsjeng).  Substitutions (DESIGN.md): each keeps the
    computational character of its namesake — 605 is graph relaxation
    over an arc network, 619 is a lattice stencil with collision terms,
    631 is alpha-beta search over a deterministic synthetic game tree. *)

open Zkopt_ir
module B = Builder
open Kern

let () =
  Workload.register ~suite:"spec" "spec-605" (fun size ->
      (* mcf-flavored: Bellman-Ford relaxation over a synthetic network *)
      let nodes = match size with Workload.Quick -> 24 | Full -> 96 in
      let arcs = nodes * 4 in
      program "spec-605"
        ~globals:[ ("dist", nodes); ("src", arcs); ("dst", arcs); ("cost", arcs) ]
        ~body:(fun _m b ->
          let dist = Value.Glob "dist" and src = Value.Glob "src" in
          let dst = Value.Glob "dst" and cost = Value.Glob "cost" in
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm arcs) (fun e ->
              let h = B.mul b e (B.imm 2654435761) in
              st b src e (B.and_ b h (B.imm (nodes - 1)));
              st b dst e (B.and_ b (B.lshr b h (B.imm 8)) (B.imm (nodes - 1)));
              st b cost e (B.add b (B.and_ b (B.lshr b h (B.imm 16)) (B.imm 255)) (B.imm 1)));
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm nodes) (fun v ->
              st b dist v (B.imm 0x3FFFFFFF));
          st b dist (B.imm 0) (B.imm 0);
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm (nodes / 2)) (fun _round ->
              B.for_ b ~from:(B.imm 0) ~bound:(B.imm arcs) (fun e ->
                  let u = ld b src e and v = ld b dst e in
                  let cand = B.add b (ld b dist u) (ld b cost e) in
                  let better = B.icmp b Instr.Slt cand (ld b dist v) in
                  B.if_ b better ~then_:(fun () -> st b dist v cand) ()));
          fold_array b dist ~n:nodes))

let () =
  Workload.register ~suite:"spec" "spec-619" (fun size ->
      (* lbm-flavored: 1-D lattice with 3 velocity components, stream +
         collide in fixed point *)
      let n = match size with Workload.Quick -> 48 | Full -> 256 in
      program "spec-619"
        ~globals:[ ("f0", n); ("f1", n); ("f2", n); ("g0", n); ("g1", n); ("g2", n) ]
        ~body:(fun _m b ->
          let f0 = Value.Glob "f0" and f1 = Value.Glob "f1" and f2 = Value.Glob "f2" in
          let g0 = Value.Glob "g0" and g1 = Value.Glob "g1" and g2 = Value.Glob "g2" in
          fill_lcg b f0 ~n ~seed:5;
          fill_lcg b f1 ~n ~seed:7;
          fill_lcg b f2 ~n ~seed:11;
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm 6) (fun _t ->
              (* stream *)
              B.for_ b ~from:(B.imm 1) ~bound:(B.imm (n - 1)) (fun i ->
                  st b g0 i (ld b f0 i);
                  st b g1 i (ld b f1 (B.sub b i (B.imm 1)));
                  st b g2 i (ld b f2 (B.add b i (B.imm 1))));
              (* collide toward local equilibrium *)
              B.for_ b ~from:(B.imm 1) ~bound:(B.imm (n - 1)) (fun i ->
                  let rho =
                    B.add b (ld b g0 i) (B.add b (ld b g1 i) (ld b g2 i))
                  in
                  let eq = B.sdiv b rho (B.imm 3) in
                  let relaxv cur =
                    B.add b cur (B.ashr b (B.sub b eq cur) (B.imm 2))
                  in
                  st b f0 i (relaxv (ld b g0 i));
                  st b f1 i (relaxv (ld b g1 i));
                  st b f2 i (relaxv (ld b g2 i))));
          combine b (fold_array b f1 ~n) (fold_array b f2 ~n)))

let () =
  Workload.register ~suite:"spec" "spec-631" (fun size ->
      (* deepsjeng-flavored: alpha-beta negamax over a deterministic
         synthetic game tree with hash-derived move scores *)
      let depth = match size with Workload.Quick -> 5 | Full -> 8 in
      let m = Modul.create () in
      ignore (B.global_zero m "nodes" 4);
      ignore
        (B.define m "search" ~params:[ i32; i32; i32; i32 ]
           ~ret:i32 (fun b ps ->
             let state = List.nth ps 0
             and depth_v = List.nth ps 1
             and alpha = List.nth ps 2
             and beta = List.nth ps 3 in
             (* count nodes *)
             st b (Value.Glob "nodes") (B.imm 0)
               (B.add b (ld b (Value.Glob "nodes") (B.imm 0)) (B.imm 1));
             let leaf = B.icmp b Instr.Eq depth_v (B.imm 0) in
             B.if_ b leaf
               ~then_:(fun () ->
                 (* static eval: mix the state hash *)
                 let h = B.mul b state (B.imm 0x9E3779B1) in
                 let e = B.ashr b h (B.imm 20) in
                 B.ret b (Some e))
               ();
             let best = B.var b i32 alpha in
             let done_ = B.var b i32 (B.imm 0) in
             B.for_ b ~from:(B.imm 0) ~bound:(B.imm 4) (fun mv ->
                 let not_done = B.icmp b Instr.Eq (Value.Reg done_) (B.imm 0) in
                 B.if_ b not_done
                   ~then_:(fun () ->
                     let child =
                       B.add b (B.mul b state (B.imm 31)) (B.add b mv (B.imm 1))
                     in
                     let nalpha = B.sub b (B.imm 0) beta in
                     let nbeta = B.sub b (B.imm 0) (Value.Reg best) in
                     let sc =
                       B.callv b "search"
                         [ child; B.sub b depth_v (B.imm 1); nalpha; nbeta ]
                     in
                     let score = B.sub b (B.imm 0) sc in
                     let improved = B.icmp b Instr.Sgt score (Value.Reg best) in
                     B.if_ b improved
                       ~then_:(fun () -> B.set b i32 best score)
                       ();
                     let cutoff = B.icmp b Instr.Sge (Value.Reg best) beta in
                     B.if_ b cutoff
                       ~then_:(fun () -> B.set b i32 done_ (B.imm 1))
                       ())
                   ());
             B.ret b (Some (Value.Reg best))));
      ignore
        (B.define m "main" ~params:[] ~ret:i32 (fun b _ ->
             let score =
               B.callv b "search"
                 [ B.imm 1; B.imm depth; B.imm (-0x40000000); B.imm 0x40000000 ]
             in
             let nodes = ld b (Value.Glob "nodes") (B.imm 0) in
             B.ret b (Some (combine b score nodes))));
      m)

let registered = true
