(** The benchmark-program registry: 58 programs mirroring the paper's
    suite (Appendix B) — PolyBench x30, NPB x8, SPEC x3, a16z x3,
    Succinct x4, RSP x1, and 9 others.

    Each program builds a fresh IR module whose [main] returns an i32
    checksum; sizes are reduced to keep simulated proving tractable,
    exactly as the paper reduces its inputs.  [Quick] sizes are for the
    test suite; [Full] sizes for the bench harness. *)

open Zkopt_ir

type size = Quick | Full

type t = {
  name : string;
  suite : string;       (* "polybench" | "npb" | "spec" | "a16z" | "succinct"
                           | "rsp" | "misc" *)
  uses_precompiles : bool;
  build : size -> Modul.t;
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 64

let register ?(uses_precompiles = false) ~suite name build =
  if Hashtbl.mem registry name then
    invalid_arg ("Workload.register: duplicate " ^ name);
  Hashtbl.replace registry name { name; suite; uses_precompiles; build }

let find name =
  match Hashtbl.find_opt registry name with
  | Some w -> w
  | None -> invalid_arg ("Workload.find: unknown program " ^ name)

let all () =
  Hashtbl.fold (fun _ w acc -> w :: acc) registry []
  |> List.sort (fun a b -> compare (a.suite, a.name) (b.suite, b.name))

let by_suite suite = List.filter (fun w -> String.equal w.suite suite) (all ())

let names () = List.map (fun w -> w.name) (all ())
