(** The 30 PolyBench kernels (Rust-port variant the paper uses), in
    Q16.16 fixed point with reduced problem sizes. *)

open Zkopt_ir
module B = Builder
open Kern

let n_of = function Workload.Quick -> 8 | Full -> 18

let reg name ?(extra_globals = []) kernel =
  Workload.register ~suite:"polybench" ("polybench-" ^ name) (fun size ->
      let n = n_of size in
      program name
        ~globals:
          ((List.map (fun (g, scale) -> (g, scale * n * n)) extra_globals)
          @ [ ("A", n * n); ("Bm", n * n); ("C", n * n); ("x", n); ("y", n);
              ("tmp", n) ])
        ~body:(fun _m b ->
          fill_lcg b (Value.Glob "A") ~n:(n * n) ~seed:7;
          fill_lcg b (Value.Glob "Bm") ~n:(n * n) ~seed:13;
          fill_lcg b (Value.Glob "x") ~n ~seed:29;
          kernel b ~n;
          let c1 = fold_array b (Value.Glob "C") ~n:(n * n) in
          let c2 = fold_array b (Value.Glob "y") ~n in
          combine b c1 c2))

let a = Value.Glob "A"
let bm = Value.Glob "Bm"
let c = Value.Glob "C"
let x = Value.Glob "x"
let y = Value.Glob "y"
let tmp = Value.Glob "tmp"

(* ---- linear algebra: blas ---------------------------------------- *)

let () =
  reg "gemm" (fun b ~n ->
      (* C := alpha*A*B + beta*C *)
      for2 b ~ni:n ~nj:n (fun i j ->
          let acc = B.var b i32 (fxmul b (ld2 b c ~cols:n i j) (fx_of_int 1)) in
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun k ->
              let p = fxmul b (ld2 b a ~cols:n i k) (ld2 b bm ~cols:n k j) in
              B.set b i32 acc (B.add b (Value.Reg acc) p));
          st2 b c ~cols:n i j (Value.Reg acc)));
  reg "2mm" (fun b ~n ->
      (* tmp-matrix = A*B; C += tmp*A (reusing A as the second operand) *)
      for2 b ~ni:n ~nj:n (fun i j ->
          let acc = B.var b i32 (B.imm 0) in
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun k ->
              B.set b i32 acc
                (B.add b (Value.Reg acc)
                   (fxmul b (ld2 b a ~cols:n i k) (ld2 b bm ~cols:n k j))));
          st2 b c ~cols:n i j (Value.Reg acc));
      for2 b ~ni:n ~nj:n (fun i j ->
          let acc = B.var b i32 (B.imm 0) in
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun k ->
              B.set b i32 acc
                (B.add b (Value.Reg acc)
                   (fxmul b (ld2 b c ~cols:n i k) (ld2 b a ~cols:n k j))));
          st b y i (B.add b (ld b y i) (Value.Reg acc))));
  reg "3mm" (fun b ~n ->
      for2 b ~ni:n ~nj:n (fun i j ->
          let acc = B.var b i32 (B.imm 0) in
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun k ->
              B.set b i32 acc
                (B.add b (Value.Reg acc)
                   (fxmul b (ld2 b a ~cols:n i k) (ld2 b bm ~cols:n k j))));
          st2 b c ~cols:n i j (Value.Reg acc));
      for2 b ~ni:n ~nj:n (fun i j ->
          let acc = B.var b i32 (B.imm 0) in
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun k ->
              B.set b i32 acc
                (B.add b (Value.Reg acc)
                   (fxmul b (ld2 b bm ~cols:n i k) (ld2 b c ~cols:n k j))));
          st2 b a ~cols:n i j (Value.Reg acc));
      for2 b ~ni:n ~nj:n (fun i j ->
          let acc = B.var b i32 (B.imm 0) in
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun k ->
              B.set b i32 acc
                (B.add b (Value.Reg acc)
                   (fxmul b (ld2 b c ~cols:n i k) (ld2 b a ~cols:n k j))));
          st b y i (Value.Reg acc)));
  reg "atax" (fun b ~n ->
      (* y = A^T (A x) *)
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
          let acc = B.var b i32 (B.imm 0) in
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun j ->
              B.set b i32 acc
                (B.add b (Value.Reg acc) (fxmul b (ld2 b a ~cols:n i j) (ld b x j))));
          st b tmp i (Value.Reg acc));
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun j ->
          let acc = B.var b i32 (B.imm 0) in
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
              B.set b i32 acc
                (B.add b (Value.Reg acc) (fxmul b (ld2 b a ~cols:n i j) (ld b tmp i))));
          st b y j (Value.Reg acc)));
  reg "bicg" (fun b ~n ->
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
          let acc = B.var b i32 (B.imm 0) in
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun j ->
              B.set b i32 acc
                (B.add b (Value.Reg acc) (fxmul b (ld2 b a ~cols:n i j) (ld b x j))));
          st b y i (Value.Reg acc));
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun j ->
          let acc = B.var b i32 (B.imm 0) in
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
              B.set b i32 acc
                (B.add b (Value.Reg acc)
                   (fxmul b (ld2 b a ~cols:n i j) (ld b tmp i))));
          st b c (B.imm 0) (B.add b (ld b c (B.imm 0)) (Value.Reg acc))));
  reg "mvt" (fun b ~n ->
      for2 b ~ni:n ~nj:n (fun i j ->
          st b x i (B.add b (ld b x i) (fxmul b (ld2 b a ~cols:n i j) (ld b y j))));
      for2 b ~ni:n ~nj:n (fun i j ->
          st b y i (B.add b (ld b y i) (fxmul b (ld2 b a ~cols:n j i) (ld b x j)))));
  reg "gemver" (fun b ~n ->
      for2 b ~ni:n ~nj:n (fun i j ->
          let v =
            B.add b (ld2 b a ~cols:n i j)
              (B.add b (fxmul b (ld b x i) (ld b y j))
                 (fxmul b (ld b tmp i) (ld b y j)))
          in
          st2 b a ~cols:n i j v);
      for2 b ~ni:n ~nj:n (fun i j ->
          st b y i (B.add b (ld b y i) (fxmul b (ld2 b a ~cols:n j i) (ld b x j))));
      for2 b ~ni:n ~nj:n (fun i j ->
          st2 b c ~cols:n i j (fxmul b (ld2 b a ~cols:n i j) (ld b y j))));
  reg "gesummv" (fun b ~n ->
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
          let s1 = B.var b i32 (B.imm 0) in
          let s2 = B.var b i32 (B.imm 0) in
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun j ->
              B.set b i32 s1
                (B.add b (Value.Reg s1) (fxmul b (ld2 b a ~cols:n i j) (ld b x j)));
              B.set b i32 s2
                (B.add b (Value.Reg s2) (fxmul b (ld2 b bm ~cols:n i j) (ld b x j))));
          st b y i (B.add b (fxmul b (fx_of_int 2) (Value.Reg s1))
                      (fxmul b (fx_of_int 3) (Value.Reg s2)))));
  reg "syrk" (fun b ~n ->
      for2 b ~ni:n ~nj:n (fun i j ->
          let acc = B.var b i32 (ld2 b c ~cols:n i j) in
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun k ->
              B.set b i32 acc
                (B.add b (Value.Reg acc)
                   (fxmul b (ld2 b a ~cols:n i k) (ld2 b a ~cols:n j k))));
          st2 b c ~cols:n i j (Value.Reg acc)));
  reg "syr2k" (fun b ~n ->
      for2 b ~ni:n ~nj:n (fun i j ->
          let acc = B.var b i32 (ld2 b c ~cols:n i j) in
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun k ->
              let t1 = fxmul b (ld2 b a ~cols:n i k) (ld2 b bm ~cols:n j k) in
              let t2 = fxmul b (ld2 b bm ~cols:n i k) (ld2 b a ~cols:n j k) in
              B.set b i32 acc (B.add b (Value.Reg acc) (B.add b t1 t2)));
          st2 b c ~cols:n i j (Value.Reg acc)));
  reg "symm" (fun b ~n ->
      for2 b ~ni:n ~nj:n (fun i j ->
          let acc = B.var b i32 (B.imm 0) in
          B.for_ b ~from:(B.imm 0) ~bound:i (fun k ->
              let t = fxmul b (ld2 b a ~cols:n i k) (ld2 b bm ~cols:n k j) in
              B.set b i32 acc (B.add b (Value.Reg acc) t);
              st2 b c ~cols:n k j
                (B.add b (ld2 b c ~cols:n k j)
                   (fxmul b (ld2 b a ~cols:n i k) (ld2 b bm ~cols:n i j))));
          let v =
            B.add b (ld2 b c ~cols:n i j)
              (B.add b (fxmul b (ld2 b bm ~cols:n i j) (ld2 b a ~cols:n i i))
                 (Value.Reg acc))
          in
          st2 b c ~cols:n i j v));
  reg "trmm" (fun b ~n ->
      for2 b ~ni:n ~nj:n (fun i j ->
          let acc = B.var b i32 (ld2 b bm ~cols:n i j) in
          B.for_ b ~from:(B.add b i (B.imm 1)) ~bound:(B.imm n) (fun k ->
              B.set b i32 acc
                (B.add b (Value.Reg acc)
                   (fxmul b (ld2 b a ~cols:n k i) (ld2 b bm ~cols:n k j))));
          st2 b c ~cols:n i j (Value.Reg acc)));
  reg "trisolv" (fun b ~n ->
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
          let acc = B.var b i32 (ld b x i) in
          B.for_ b ~from:(B.imm 0) ~bound:i (fun j ->
              B.set b i32 acc
                (B.sub b (Value.Reg acc) (fxmul b (ld2 b a ~cols:n i j) (ld b y j))));
          (* diagonal kept away from zero *)
          let diag = B.or_ b (ld2 b a ~cols:n i i) (B.imm 0x1_0000) in
          st b y i (fxdiv b (Value.Reg acc) diag)));
  reg "cholesky" (fun b ~n ->
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
          B.for_ b ~from:(B.imm 0) ~bound:i (fun j ->
              let acc = B.var b i32 (ld2 b a ~cols:n i j) in
              B.for_ b ~from:(B.imm 0) ~bound:j (fun k ->
                  B.set b i32 acc
                    (B.sub b (Value.Reg acc)
                       (fxmul b (ld2 b a ~cols:n i k) (ld2 b a ~cols:n j k))));
              let diag = B.or_ b (ld2 b a ~cols:n j j) (B.imm 0x1_0000) in
              st2 b a ~cols:n i j (fxdiv b (Value.Reg acc) diag));
          (* pseudo square root on the diagonal: keep positive magnitude *)
          let d = B.or_ b (ld2 b a ~cols:n i i) (B.imm 0x1_0000) in
          st2 b a ~cols:n i i (B.lshr b d (B.imm 1)));
      for2 b ~ni:n ~nj:n (fun i j -> st2 b c ~cols:n i j (ld2 b a ~cols:n i j)));
  reg "lu" (fun b ~n ->
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
          B.for_ b ~from:(B.imm 0) ~bound:i (fun j ->
              let acc = B.var b i32 (ld2 b a ~cols:n i j) in
              B.for_ b ~from:(B.imm 0) ~bound:j (fun k ->
                  B.set b i32 acc
                    (B.sub b (Value.Reg acc)
                       (fxmul b (ld2 b a ~cols:n i k) (ld2 b a ~cols:n k j))));
              let diag = B.or_ b (ld2 b a ~cols:n j j) (B.imm 0x1_0000) in
              st2 b a ~cols:n i j (fxdiv b (Value.Reg acc) diag));
          B.for_ b ~from:i ~bound:(B.imm n) (fun j ->
              let acc = B.var b i32 (ld2 b a ~cols:n i j) in
              B.for_ b ~from:(B.imm 0) ~bound:i (fun k ->
                  B.set b i32 acc
                    (B.sub b (Value.Reg acc)
                       (fxmul b (ld2 b a ~cols:n i k) (ld2 b a ~cols:n k j))));
              st2 b a ~cols:n i j (Value.Reg acc)));
      for2 b ~ni:n ~nj:n (fun i j -> st2 b c ~cols:n i j (ld2 b a ~cols:n i j)));
  reg "ludcmp" (fun b ~n ->
      (* lu factorization followed by the two triangular solves *)
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
          B.for_ b ~from:(B.imm 0) ~bound:i (fun j ->
              let acc = B.var b i32 (ld2 b a ~cols:n i j) in
              B.for_ b ~from:(B.imm 0) ~bound:j (fun k ->
                  B.set b i32 acc
                    (B.sub b (Value.Reg acc)
                       (fxmul b (ld2 b a ~cols:n i k) (ld2 b a ~cols:n k j))));
              let diag = B.or_ b (ld2 b a ~cols:n j j) (B.imm 0x1_0000) in
              st2 b a ~cols:n i j (fxdiv b (Value.Reg acc) diag)));
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
          let acc = B.var b i32 (ld b x i) in
          B.for_ b ~from:(B.imm 0) ~bound:i (fun j ->
              B.set b i32 acc
                (B.sub b (Value.Reg acc) (fxmul b (ld2 b a ~cols:n i j) (ld b tmp j))));
          st b tmp i (Value.Reg acc));
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i2 ->
          let i = B.sub b (B.imm (n - 1)) i2 in
          let acc = B.var b i32 (ld b tmp i) in
          B.for_ b ~from:(B.add b i (B.imm 1)) ~bound:(B.imm n) (fun j ->
              B.set b i32 acc
                (B.sub b (Value.Reg acc) (fxmul b (ld2 b a ~cols:n i j) (ld b y j))));
          let diag = B.or_ b (ld2 b a ~cols:n i i) (B.imm 0x1_0000) in
          st b y i (fxdiv b (Value.Reg acc) diag)))

(* ---- data mining / stencils / dynamic programming ------------------ *)

let () =
  reg "correlation" (fun b ~n ->
      (* means in y, then the correlation-like matrix in C *)
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun j ->
          let acc = B.var b i32 (B.imm 0) in
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
              B.set b i32 acc (B.add b (Value.Reg acc) (ld2 b a ~cols:n i j)));
          st b y j (B.sdiv b (Value.Reg acc) (B.imm n)));
      for2 b ~ni:n ~nj:n (fun j1 j2 ->
          let acc = B.var b i32 (B.imm 0) in
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
              let d1 = B.sub b (ld2 b a ~cols:n i j1) (ld b y j1) in
              let d2 = B.sub b (ld2 b a ~cols:n i j2) (ld b y j2) in
              B.set b i32 acc (B.add b (Value.Reg acc) (fxmul b d1 d2)));
          st2 b c ~cols:n j1 j2 (Value.Reg acc)));
  reg "covariance" (fun b ~n ->
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun j ->
          let acc = B.var b i32 (B.imm 0) in
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
              B.set b i32 acc (B.add b (Value.Reg acc) (ld2 b a ~cols:n i j)));
          st b y j (B.sdiv b (Value.Reg acc) (B.imm n)));
      for2 b ~ni:n ~nj:n (fun j1 j2 ->
          let acc = B.var b i32 (B.imm 0) in
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
              let d1 = B.sub b (ld2 b a ~cols:n i j1) (ld b y j1) in
              let d2 = B.sub b (ld2 b a ~cols:n i j2) (ld b y j2) in
              B.set b i32 acc (B.add b (Value.Reg acc) (fxmul b d1 d2)));
          st2 b c ~cols:n j1 j2 (B.sdiv b (Value.Reg acc) (B.imm (max 1 (n - 1))))));
  reg "gramschmidt" (fun b ~n ->
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun k ->
          let nrm = B.var b i32 (B.imm 0x1_0000) in
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
              let v = ld2 b a ~cols:n i k in
              B.set b i32 nrm (B.add b (Value.Reg nrm) (fxmul b v v)));
          st2 b c ~cols:n k k (Value.Reg nrm);
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
              st2 b bm ~cols:n i k (fxdiv b (ld2 b a ~cols:n i k) (Value.Reg nrm)));
          B.for_ b ~from:(B.add b k (B.imm 1)) ~bound:(B.imm n) (fun j ->
              let acc = B.var b i32 (B.imm 0) in
              B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
                  B.set b i32 acc
                    (B.add b (Value.Reg acc)
                       (fxmul b (ld2 b bm ~cols:n i k) (ld2 b a ~cols:n i j))));
              st2 b c ~cols:n k j (Value.Reg acc);
              B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
                  st2 b a ~cols:n i j
                    (B.sub b (ld2 b a ~cols:n i j)
                       (fxmul b (ld2 b bm ~cols:n i k) (Value.Reg acc)))))));
  reg "floyd-warshall" (fun b ~n ->
      for3 b ~ni:n ~nj:n ~nk:n (fun k i j ->
          let through = B.add b (ld2 b a ~cols:n i k) (ld2 b a ~cols:n k j) in
          let direct = ld2 b a ~cols:n i j in
          let shorter = B.icmp b Instr.Slt through direct in
          st2 b a ~cols:n i j (B.select b shorter through direct));
      for2 b ~ni:n ~nj:n (fun i j -> st2 b c ~cols:n i j (ld2 b a ~cols:n i j)));
  reg "nussinov" (fun b ~n ->
      (* dp over sequence pairs; the abs/branch pattern of Fig. 12 *)
      B.for_ b ~from:(B.imm 1) ~bound:(B.imm n) (fun span ->
          B.for_ b ~from:(B.imm 0) ~bound:(B.sub b (B.imm n) span) (fun i ->
              let j = B.add b i span in
              let best = B.var b i32 (ld2 b c ~cols:n i j) in
              let with_pair =
                let si = B.and_ b (ld b x i) (B.imm 3) in
                let sj = B.and_ b (ld b x (B.sub b j (B.imm 1))) (B.imm 3) in
                let matchp = B.icmp b Instr.Eq (B.add b si sj) (B.imm 3) in
                let inner =
                  B.add b
                    (ld2 b c ~cols:n (B.add b i (B.imm 1)) (B.sub b j (B.imm 1)))
                    (B.select b matchp (B.imm 1) (B.imm 0))
                in
                inner
              in
              let better = B.icmp b Instr.Sgt with_pair (Value.Reg best) in
              B.if_ b better
                ~then_:(fun () -> B.set b i32 best with_pair)
                ();
              st2 b c ~cols:n i j (Value.Reg best))));
  reg "deriche" (fun b ~n ->
      (* two directional IIR-style passes *)
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
          let ym1 = B.var b i32 (B.imm 0) in
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun j ->
              let v =
                B.add b
                  (fxmul b (ld2 b a ~cols:n i j) (fx_of_int 1))
                  (fxmul b (Value.Reg ym1) (B.imm 0x8000))
              in
              B.set b i32 ym1 v;
              st2 b c ~cols:n i j v));
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
          let yp1 = B.var b i32 (B.imm 0) in
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun j2 ->
              let j = B.sub b (B.imm (n - 1)) j2 in
              let v =
                B.add b (ld2 b c ~cols:n i j) (fxmul b (Value.Reg yp1) (B.imm 0x4000))
              in
              B.set b i32 yp1 v;
              st2 b c ~cols:n i j v)));
  reg "adi" (fun b ~n ->
      (* alternating-direction sweeps *)
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm 4) (fun _t ->
          for2 b ~ni:n ~nj:n (fun i j ->
              let v =
                B.add b (ld2 b a ~cols:n i j)
                  (fxmul b (ld2 b bm ~cols:n i j) (B.imm 0x2000))
              in
              st2 b c ~cols:n i j v);
          for2 b ~ni:n ~nj:n (fun i j ->
              st2 b a ~cols:n i j
                (B.add b (ld2 b c ~cols:n j i) (B.lshr b (ld2 b a ~cols:n i j) (B.imm 1))))));
  reg "doitgen" (fun b ~n ->
      let q = min n 8 in
      for2 b ~ni:q ~nj:q (fun r_ q_ ->
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun p ->
              let acc = B.var b i32 (B.imm 0) in
              B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun s ->
                  let arp =
                    ld2 b a ~cols:n (B.add b (B.mul b r_ (B.imm q)) q_) s
                  in
                  B.set b i32 acc
                    (B.add b (Value.Reg acc) (fxmul b arp (ld2 b c ~cols:n s p))));
              st b tmp p (Value.Reg acc));
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun p ->
              st2 b a ~cols:n (B.add b (B.mul b r_ (B.imm q)) q_) p (ld b tmp p))));
  reg "durbin" (fun b ~n ->
      (* Toeplitz solver with a data-dependent divide each step *)
      st b y (B.imm 0) (B.sub b (B.imm 0) (ld b x (B.imm 0)));
      let alpha = B.var b i32 (B.sub b (B.imm 0) (ld b x (B.imm 0))) in
      let beta = B.var b i32 (fx_of_int 1) in
      B.for_ b ~from:(B.imm 1) ~bound:(B.imm n) (fun k ->
          let a2 = fxmul b (Value.Reg alpha) (Value.Reg alpha) in
          B.set b i32 beta
            (fxmul b (B.sub b (fx_of_int 1) a2) (Value.Reg beta));
          let sum = B.var b i32 (B.imm 0) in
          B.for_ b ~from:(B.imm 0) ~bound:k (fun i ->
              B.set b i32 sum
                (B.add b (Value.Reg sum)
                   (fxmul b (ld b x (B.sub b k (B.add b i (B.imm 1))))
                      (ld b y i))));
          let betap = B.or_ b (Value.Reg beta) (B.imm 0x100) in
          B.set b i32 alpha
            (B.sub b (B.imm 0)
               (fxdiv b (B.add b (ld b x k) (Value.Reg sum)) betap));
          B.for_ b ~from:(B.imm 0) ~bound:k (fun i ->
              st b tmp i
                (B.add b (ld b y i)
                   (fxmul b (Value.Reg alpha)
                      (ld b y (B.sub b k (B.add b i (B.imm 1)))))));
          B.for_ b ~from:(B.imm 0) ~bound:k (fun i -> st b y i (ld b tmp i));
          st b y k (Value.Reg alpha)));
  reg "jacobi-1d" (fun b ~n ->
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm 8) (fun _t ->
          B.for_ b ~from:(B.imm 1) ~bound:(B.imm (n - 1)) (fun i ->
              let v =
                B.sdiv b
                  (B.add b (ld b x (B.sub b i (B.imm 1)))
                     (B.add b (ld b x i) (ld b x (B.add b i (B.imm 1)))))
                  (B.imm 3)
              in
              st b y i v);
          B.for_ b ~from:(B.imm 1) ~bound:(B.imm (n - 1)) (fun i -> st b x i (ld b y i))));
  reg "jacobi-2d" (fun b ~n ->
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm 3) (fun _t ->
          for2 b ~ni:(n - 2) ~nj:(n - 2) (fun i0 j0 ->
              let i = B.add b i0 (B.imm 1) and j = B.add b j0 (B.imm 1) in
              let v =
                B.sdiv b
                  (B.add b (ld2 b a ~cols:n i j)
                     (B.add b
                        (B.add b (ld2 b a ~cols:n (B.sub b i (B.imm 1)) j)
                           (ld2 b a ~cols:n (B.add b i (B.imm 1)) j))
                        (B.add b (ld2 b a ~cols:n i (B.sub b j (B.imm 1)))
                           (ld2 b a ~cols:n i (B.add b j (B.imm 1))))))
                  (B.imm 5)
              in
              st2 b c ~cols:n i j v);
          for2 b ~ni:(n - 2) ~nj:(n - 2) (fun i0 j0 ->
              let i = B.add b i0 (B.imm 1) and j = B.add b j0 (B.imm 1) in
              st2 b a ~cols:n i j (ld2 b c ~cols:n i j))));
  reg "seidel-2d" (fun b ~n ->
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm 3) (fun _t ->
          for2 b ~ni:(n - 2) ~nj:(n - 2) (fun i0 j0 ->
              let i = B.add b i0 (B.imm 1) and j = B.add b j0 (B.imm 1) in
              let v =
                B.sdiv b
                  (B.add b
                     (B.add b (ld2 b a ~cols:n (B.sub b i (B.imm 1)) j)
                        (ld2 b a ~cols:n (B.add b i (B.imm 1)) j))
                     (B.add b (ld2 b a ~cols:n i (B.sub b j (B.imm 1)))
                        (B.add b (ld2 b a ~cols:n i (B.add b j (B.imm 1)))
                           (ld2 b a ~cols:n i j))))
                  (B.imm 5)
              in
              st2 b a ~cols:n i j v)));
  reg "fdtd-2d" (fun b ~n ->
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm 3) (fun t ->
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun j -> st2 b a ~cols:n (B.imm 0) j t);
          for2 b ~ni:(n - 1) ~nj:n (fun i0 j ->
              let i = B.add b i0 (B.imm 1) in
              st2 b a ~cols:n i j
                (B.sub b (ld2 b a ~cols:n i j)
                   (fxmul b (B.imm 0x8000)
                      (B.sub b (ld2 b bm ~cols:n i j)
                         (ld2 b bm ~cols:n (B.sub b i (B.imm 1)) j)))));
          for2 b ~ni:n ~nj:(n - 1) (fun i j0 ->
              let j = B.add b j0 (B.imm 1) in
              st2 b c ~cols:n i j
                (B.sub b (ld2 b c ~cols:n i j)
                   (fxmul b (B.imm 0x8000)
                      (B.sub b (ld2 b bm ~cols:n i j)
                         (ld2 b bm ~cols:n i (B.sub b j (B.imm 1)))))));
          for2 b ~ni:(n - 1) ~nj:(n - 1) (fun i j ->
              st2 b bm ~cols:n i j
                (B.sub b (ld2 b bm ~cols:n i j)
                   (fxmul b (B.imm 0xB333)
                      (B.add b
                         (B.sub b (ld2 b a ~cols:n (B.add b i (B.imm 1)) j)
                            (ld2 b a ~cols:n i j))
                         (B.sub b (ld2 b c ~cols:n i (B.add b j (B.imm 1)))
                            (ld2 b c ~cols:n i j))))))));
  reg "heat-3d" (fun b ~n ->
      let d = min n 8 in
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm 2) (fun _t ->
          for3 b ~ni:(d - 2) ~nj:(d - 2) ~nk:(d - 2) (fun i0 j0 k0 ->
              let i = B.add b i0 (B.imm 1)
              and j = B.add b j0 (B.imm 1)
              and k = B.add b k0 (B.imm 1) in
              let idx3 x y z =
                B.add b (B.mul b x (B.imm (d * d))) (B.add b (B.mul b y (B.imm d)) z)
              in
              let l v = ld b a v in
              let v =
                B.add b (l (idx3 i j k))
                  (B.ashr b
                     (B.add b
                        (B.add b (l (idx3 (B.add b i (B.imm 1)) j k))
                           (l (idx3 (B.sub b i (B.imm 1)) j k)))
                        (B.add b (l (idx3 i (B.add b j (B.imm 1)) k))
                           (B.add b (l (idx3 i (B.sub b j (B.imm 1)) k))
                              (B.add b (l (idx3 i j (B.add b k (B.imm 1))))
                                 (l (idx3 i j (B.sub b k (B.imm 1))))))))
                     (B.imm 3))
              in
              st b c (idx3 i j k) v);
          for3 b ~ni:(d - 2) ~nj:(d - 2) ~nk:(d - 2) (fun i0 j0 k0 ->
              let i = B.add b i0 (B.imm 1)
              and j = B.add b j0 (B.imm 1)
              and k = B.add b k0 (B.imm 1) in
              let idx3 x y z =
                B.add b (B.mul b x (B.imm (d * d))) (B.add b (B.mul b y (B.imm d)) z)
              in
              st b a (idx3 i j k) (ld b c (idx3 i j k)))))
