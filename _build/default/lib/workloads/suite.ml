(** The assembled 58-program suite.  Referencing each program module
    forces its registrations to link. *)

let _force_linkage =
  (Polybench.n_of, Npb.dim, Spec.registered, Crypto.iters, Misc.registered)

(** Assert the suite matches the paper's composition. *)
let check_composition () =
  let count suite = List.length (Workload.by_suite suite) in
  let total = List.length (Workload.all ()) in
  let expect name got want =
    if got <> want then
      failwith (Printf.sprintf "suite %s: %d programs, expected %d" name got want)
  in
  expect "polybench" (count "polybench") 30;
  expect "npb" (count "npb") 8;
  expect "spec" (count "spec") 3;
  expect "a16z" (count "a16z") 3;
  expect "succinct" (count "succinct") 4;
  expect "rsp" (count "rsp") 1;
  expect "misc" (count "misc") 9;
  expect "total" total 58

let all () =
  check_composition ();
  Workload.all ()
