(** The eight NAS Parallel Benchmarks (sequential Rust-port character),
    reduced: each program keeps the loop/memory structure of its
    namesake — BT/SP/LU are deep loop-nest block solvers, CG is sparse
    matvec iteration, EP is random-number rejection sampling, FT is a
    radix-2 transform, IS is bucket sorting, MG is a V-cycle relaxation. *)

open Zkopt_ir
module B = Builder
open Kern

let reg name ~globals build =
  Workload.register ~suite:"npb" ("npb-" ^ name) (fun size ->
      program name ~globals:(globals size) ~body:(fun m b -> build m b size))

let dim = function Workload.Quick -> 8 | Full -> 16

(* block-tridiagonal-style solver: depth-4 loop nests over 5-wide blocks *)
let block_solver ~sweeps b size =
  let n = dim size in
  let blk = 5 in
  let cols = n * blk in
  let u = Value.Glob "u" and rhs = Value.Glob "rhs" and lhs = Value.Glob "lhs" in
  fill_lcg b u ~n:(n * cols) ~seed:3;
  fill_lcg b lhs ~n:(n * cols) ~seed:5;
  B.for_ b ~from:(B.imm 0) ~bound:(B.imm sweeps) (fun _s ->
      (* compute rhs from the stencil of u *)
      for2 b ~ni:(n - 2) ~nj:blk (fun i0 m_ ->
          let i = B.add b i0 (B.imm 1) in
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun j ->
              let idx ii = B.add b (B.mul b ii (B.imm cols)) (B.add b (B.mul b j (B.imm blk) |> fun jj -> jj) m_) in
              let v =
                B.sub b
                  (B.add b (ld b u (idx (B.sub b i (B.imm 1))))
                     (ld b u (idx (B.add b i (B.imm 1)))))
                  (B.shl b (ld b u (idx i)) (B.imm 1))
              in
              st b rhs (idx i) v));
      (* forward elimination along each line, 5x5-block flavored *)
      for3 b ~ni:(n - 1) ~nj:blk ~nk:blk (fun i0 m1 m2 ->
          let i = B.add b i0 (B.imm 1) in
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun j ->
              let idx ii mm = B.add b (B.mul b ii (B.imm cols)) (B.add b (B.mul b j (B.imm blk)) mm) in
              let fac = ld b lhs (idx i m1) in
              let upd =
                B.sub b (ld b rhs (idx i m1))
                  (fxmul b fac (ld b rhs (idx (B.sub b i (B.imm 1)) m2)))
              in
              st b rhs (idx i m1) upd));
      (* back substitution into u *)
      for2 b ~ni:(n - 1) ~nj:blk (fun i0 m_ ->
          let i = B.sub b (B.imm (n - 2)) i0 in
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun j ->
              let idx ii = B.add b (B.mul b ii (B.imm cols)) (B.add b (B.mul b j (B.imm blk)) m_) in
              st b u (idx i)
                (B.add b (ld b rhs (idx i))
                   (B.ashr b (ld b u (idx (B.add b i (B.imm 1)))) (B.imm 2))))));
  fold_array b u ~n:(n * cols)

let () =
  let solver_globals size =
    let n = dim size in
    [ ("u", n * n * 5); ("rhs", n * n * 5); ("lhs", n * n * 5) ]
  in
  reg "bt" ~globals:solver_globals (fun _m b size -> block_solver ~sweeps:2 b size);
  reg "sp" ~globals:solver_globals (fun _m b size -> block_solver ~sweeps:3 b size);
  reg "lu" ~globals:solver_globals (fun _m b size ->
      (* lu adds an extra relaxation pass over the solver structure; the
         paper's licm case study (Fig. 9) comes from this program *)
      let n = dim size in
      let blk = 5 in
      let cols = n * blk in
      let u = Value.Glob "u" in
      let r = block_solver ~sweeps:2 b size in
      for3 b ~ni:(n - 2) ~nj:(n - 2) ~nk:blk (fun i0 j0 m_ ->
          let i = B.add b i0 (B.imm 1) and j = B.add b j0 (B.imm 1) in
          let idx ii jj = B.add b (B.mul b ii (B.imm cols)) (B.add b (B.mul b jj (B.imm blk)) m_) in
          st b u (idx i j)
            (B.add b
               (B.ashr b (B.add b (ld b u (idx (B.sub b i (B.imm 1)) j))
                            (ld b u (idx i (B.sub b j (B.imm 1))))) (B.imm 1))
               (B.imm 42)));
      combine b r (fold_array b u ~n:(n * cols)))

let () =
  reg "cg"
    ~globals:(fun size ->
      let n = 16 * dim size in
      [ ("av", n * 8); ("acol", n * 8); ("xv", n); ("zv", n); ("pv", n); ("qv", n) ])
    (fun _m b size ->
      (* conjugate-gradient iterations over a synthetic 8-per-row sparse
         matrix *)
      let n = 16 * dim size in
      let av = Value.Glob "av" and acol = Value.Glob "acol" in
      let xv = Value.Glob "xv" and zv = Value.Glob "zv" in
      let pv = Value.Glob "pv" and qv = Value.Glob "qv" in
      fill_lcg b av ~n:(n * 8) ~seed:11;
      fill_lcg b xv ~n ~seed:17;
      (* column indices in range *)
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm (n * 8)) (fun i ->
          let v = B.mul b i (B.imm 2654435761) in
          st b acol i (B.and_ b v (B.imm (n - 1))));
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i -> st b pv i (ld b xv i));
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm 6) (fun _iter ->
          (* q = A p *)
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun row ->
              let acc = B.var b i32 (B.imm 0) in
              B.for_ b ~from:(B.imm 0) ~bound:(B.imm 8) (fun k ->
                  let e = B.add b (B.mul b row (B.imm 8)) k in
                  let col = ld b acol e in
                  B.set b i32 acc
                    (B.add b (Value.Reg acc) (fxmul b (ld b av e) (ld b pv col))));
              st b qv row (Value.Reg acc));
          (* alpha = <p,q> scaled; z += alpha p; p = q + p/2 *)
          let dot = B.var b i32 (B.imm 0x1_0000) in
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
              B.set b i32 dot
                (B.add b (Value.Reg dot) (fxmul b (ld b pv i) (ld b qv i))));
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
              st b zv i
                (B.add b (ld b zv i)
                   (fxdiv b (ld b pv i) (B.or_ b (Value.Reg dot) (B.imm 0x100))));
              st b pv i (B.add b (ld b qv i) (B.ashr b (ld b pv i) (B.imm 1)))));
      fold_array b zv ~n)

let () =
  reg "ep"
    ~globals:(fun _ -> [ ("counts", 16) ])
    (fun _m b size ->
      (* embarrassingly parallel rejection sampling: generate pairs, keep
         those inside the disc, bucket by annulus *)
      let iters = match size with Workload.Quick -> 400 | Full -> 6000 in
      let counts = Value.Glob "counts" in
      let s = B.var b i32 (B.imm 271828183) in
      let inside = B.var b i32 (B.imm 0) in
      let lcg () =
        let nxt = B.add b (B.mul b (Value.Reg s) (B.imm 1103515245)) (B.imm 12345) in
        B.set b i32 s nxt;
        (* uniform Q16.16 in [0,2) *)
        B.and_ b (Value.Reg s) (B.imm 0x1_FFFF)
      in
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm iters) (fun _i ->
          let px = B.sub b (lcg ()) (fx_of_int 1) in
          let py = B.sub b (lcg ()) (fx_of_int 1) in
          let t = B.add b (fxmul b px px) (fxmul b py py) in
          let ok = B.icmp b Instr.Sle t (fx_of_int 1) in
          B.if_ b ok
            ~then_:(fun () ->
              B.set b i32 inside (B.add b (Value.Reg inside) (B.imm 1));
              let annulus = B.and_ b (B.lshr b t (B.imm 13)) (B.imm 15) in
              st b counts annulus (B.add b (ld b counts annulus) (B.imm 1)))
            ());
      combine b (fold_array b counts ~n:16) (Value.Reg inside))

let () =
  reg "ft"
    ~globals:(fun size ->
      let n = 8 * dim size in
      [ ("re", n); ("im", n) ])
    (fun _m b size ->
      (* iterative radix-2 butterfly over fixed-point complex data *)
      let n = 8 * dim size in
      let logn =
        let rec go k v = if v >= n then k else go (k + 1) (v * 2) in
        go 0 1
      in
      let re = Value.Glob "re" and im = Value.Glob "im" in
      fill_lcg b re ~n ~seed:23;
      fill_lcg b im ~n ~seed:31;
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm logn) (fun stage ->
          let half = B.shl b (B.imm 1) stage in
          let span = B.shl b half (B.imm 1) in
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
              let pos = B.urem b i span in
              let lower = B.icmp b Instr.Ult pos half in
              B.if_ b lower
                ~then_:(fun () ->
                  let j = B.add b i half in
                  (* twiddle approximated by a shifted rotation *)
                  let wr = B.sub b (fx_of_int 1) (B.shl b pos (B.imm 8)) in
                  let tr =
                    B.sub b (fxmul b (ld b re j) wr) (B.ashr b (ld b im j) (B.imm 1))
                  in
                  let ti =
                    B.add b (fxmul b (ld b im j) wr) (B.ashr b (ld b re j) (B.imm 1))
                  in
                  st b re j (B.sub b (ld b re i) tr);
                  st b im j (B.sub b (ld b im i) ti);
                  st b re i (B.add b (ld b re i) tr);
                  st b im i (B.add b (ld b im i) ti))
                ()));
      combine b (fold_array b re ~n) (fold_array b im ~n))

let () =
  reg "is"
    ~globals:(fun size ->
      let n = 64 * dim size in
      [ ("keys", n); ("buckets", 256); ("sorted", n) ])
    (fun _m b size ->
      (* bucket sort with prefix sums *)
      let n = 64 * dim size in
      let keys = Value.Glob "keys" and buckets = Value.Glob "buckets" in
      let sorted = Value.Glob "sorted" in
      fill_lcg b keys ~n ~seed:41;
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
          let k = B.and_ b (ld b keys i) (B.imm 255) in
          st b keys i k;
          st b buckets k (B.add b (ld b buckets k) (B.imm 1)));
      (* exclusive prefix sum *)
      let run = B.var b i32 (B.imm 0) in
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm 256) (fun k ->
          let cnt = ld b buckets k in
          st b buckets k (Value.Reg run);
          B.set b i32 run (B.add b (Value.Reg run) cnt));
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
          let k = ld b keys i in
          let pos = ld b buckets k in
          st b buckets k (B.add b pos (B.imm 1));
          st b sorted pos k);
      fold_array b sorted ~n)

let () =
  reg "mg"
    ~globals:(fun size ->
      let n = 8 * dim size in
      [ ("v0", n); ("v1", n / 2); ("v2", n / 4); ("r0", n) ])
    (fun _m b size ->
      (* one V-cycle: restrict to two coarser grids, relax, prolongate *)
      let n = 8 * dim size in
      let v0 = Value.Glob "v0" and v1 = Value.Glob "v1" in
      let v2 = Value.Glob "v2" and r0 = Value.Glob "r0" in
      fill_lcg b v0 ~n ~seed:53;
      let relax arr len =
        B.for_ b ~from:(B.imm 1) ~bound:(B.imm (len - 1)) (fun i ->
            let v =
              B.ashr b
                (B.add b (ld b arr (B.sub b i (B.imm 1)))
                   (B.add b (B.shl b (ld b arr i) (B.imm 1))
                      (ld b arr (B.add b i (B.imm 1)))))
                (B.imm 2)
            in
            st b arr i v)
      in
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm 3) (fun _cycle ->
          relax v0 n;
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm (n / 2)) (fun i ->
              st b v1 i (B.ashr b (B.add b (ld b v0 (B.shl b i (B.imm 1)))
                                     (ld b v0 (B.add b (B.shl b i (B.imm 1)) (B.imm 1))))
                           (B.imm 1)));
          relax v1 (n / 2);
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm (n / 4)) (fun i ->
              st b v2 i (B.ashr b (B.add b (ld b v1 (B.shl b i (B.imm 1)))
                                     (ld b v1 (B.add b (B.shl b i (B.imm 1)) (B.imm 1))))
                           (B.imm 1)));
          relax v2 (n / 4);
          (* prolongate and correct *)
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm (n / 2)) (fun i ->
              let coarse = ld b v2 (B.lshr b i (B.imm 1)) in
              st b v1 i (B.add b (ld b v1 i) (B.ashr b coarse (B.imm 1))));
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
              let coarse = ld b v1 (B.lshr b i (B.imm 1)) in
              st b r0 i (B.add b (ld b v0 i) (B.ashr b coarse (B.imm 1)));
              st b v0 i (ld b r0 i)));
      fold_array b v0 ~n)
