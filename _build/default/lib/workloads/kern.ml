(** Shared kernel-construction helpers for the benchmark programs.

    Numerical kernels use Q16.16 fixed point in place of the originals'
    f64 — zkVMs have no native floating point anyway (Appendix A), and
    the loop/memory structure is what the study measures.  All input data
    is generated in-guest with an LCG so programs are self-contained and
    deterministic. *)

open Zkopt_ir
module B = Builder

let i32 = Ty.I32
let i64 = Ty.I64

(* Q16.16 multiply/divide are module-level functions (as in the Rust
   ports, where the fixed-point operators are ordinary calls): the
   unoptimized baseline is call-heavy and the inliner has real material,
   matching the paper's RQ1 inline numbers. *)
let define_fx_helpers m =
  if Modul.find_func m "fxmul" = None then begin
    ignore
      (B.define m "fxmul" ~params:[ Ty.I32; Ty.I32 ] ~ret:Ty.I32 (fun b ps ->
           let wx = B.sext b (List.nth ps 0) in
           let wy = B.sext b (List.nth ps 1) in
           let prod = B.mul ~ty:Ty.I64 b wx wy in
           B.ret b (Some (B.trunc b (B.ashr ~ty:Ty.I64 b prod (B.imm 16))))));
    ignore
      (B.define m "fxdiv" ~params:[ Ty.I32; Ty.I32 ] ~ret:Ty.I32 (fun b ps ->
           let wx = B.shl ~ty:Ty.I64 b (B.sext b (List.nth ps 0)) (B.imm 16) in
           let wy = B.sext b (List.nth ps 1) in
           B.ret b (Some (B.trunc b (B.sdiv ~ty:Ty.I64 b wx wy)))))
  end

let fxmul b x y = B.callv b "fxmul" [ x; y ]
let fxdiv b x y = B.callv b "fxdiv" [ x; y ]

let fx_of_int n = B.imm (n * 65536)

(* element address within a flat array of words *)
let at b arr idx = B.addr b arr ~index:idx

(* 2-D indexing over row-major [cols]-wide arrays *)
let at2 b arr ~cols i j =
  let row = B.mul b i (B.imm cols) in
  B.addr b arr ~index:(B.add b row j)

let ld b arr idx = B.load b (at b arr idx)
let st b arr idx v = B.store b ~addr:(at b arr idx) v
let ld2 b arr ~cols i j = B.load b (at2 b arr ~cols i j)
let st2 b arr ~cols i j v = B.store b ~addr:(at2 b arr ~cols i j) v

(* Fill [arr] (n words) with LCG values masked to modest fixed-point
   magnitudes so Q16.16 products stay well-behaved. *)
let fill_lcg b arr ~n ~seed =
  let state = B.var b i32 (B.imm seed) in
  B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
      let next =
        B.add b
          (B.mul b (Value.Reg state) (B.imm 1103515245))
          (B.imm 12345)
      in
      B.set b i32 state next;
      (* keep values in [0, 4) as Q16.16 *)
      let v = B.and_ b (Value.Reg state) (B.imm 0x0003_FFFF) in
      st b arr i v)

(* xor-multiply fold of an array into a checksum value *)
let fold_array b arr ~n =
  let acc = B.var b i32 (B.imm 0x811C9DC5) in
  B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
      let v = ld b arr i in
      let mixed = B.mul b (Value.Reg acc) (B.imm 16777619) in
      B.set b i32 acc (B.xor b mixed v));
  Value.Reg acc

let combine b a c = B.xor b a (B.mul b c (B.imm 0x9E3779B1))

(* Standard program skeleton: allocate globals, run [body], return the
   fold of [checksum_arrays]. *)
let program name ~globals ~body =
  let m = Modul.create () in
  List.iter (fun (g, words) -> ignore (B.global_zero m g (4 * words))) globals;
  define_fx_helpers m;
  ignore
    (B.define m "main" ~params:[] ~ret:i32 (fun b _ ->
         let result = body m b in
         B.ret b (Some result)));
  ignore name;
  m

(* nested 2-D loop helper *)
let for2 b ~ni ~nj body =
  B.for_ b ~from:(B.imm 0) ~bound:(B.imm ni) (fun i ->
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm nj) (fun j -> body i j))

let for3 b ~ni ~nj ~nk body =
  B.for_ b ~from:(B.imm 0) ~bound:(B.imm ni) (fun i ->
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm nj) (fun j ->
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm nk) (fun k -> body i j k)))
