lib/workloads/polybench.ml: Builder Instr Kern List Value Workload Zkopt_ir
