lib/workloads/misc.ml: Array Builder Extern Instr Int32 Kern List Modul Value Workload Zkopt_ir
