lib/workloads/suite.ml: Crypto List Misc Npb Polybench Printf Spec Workload
