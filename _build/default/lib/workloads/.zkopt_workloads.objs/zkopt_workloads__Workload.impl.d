lib/workloads/workload.ml: Hashtbl List Modul String Zkopt_ir
