lib/workloads/crypto.ml: Array Builder Extern Int32 Kern Value Workload Zkopt_ir
