lib/workloads/spec.ml: Builder Instr Kern List Modul Value Workload Zkopt_ir
