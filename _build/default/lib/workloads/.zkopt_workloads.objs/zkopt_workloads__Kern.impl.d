lib/workloads/kern.ml: Builder List Modul Ty Value Zkopt_ir
