lib/workloads/npb.ml: Builder Instr Kern Value Workload Zkopt_ir
