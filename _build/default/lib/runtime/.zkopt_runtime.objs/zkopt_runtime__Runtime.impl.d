lib/runtime/runtime.ml: Builder Extern Func Instr List Modul Ty Value Zkopt_ir
