(** Guest runtime library, written in the IR itself.

    The code generator lowers 64-bit division/remainder and variable
    64-bit shifts to calls to these functions (mirroring compiler-rt's
    __divdi3 family), so the driver links them into every module and
    prunes the unused ones.  The soft SHA-256 compression is used by the
    benchmarks that deliberately avoid precompiles.

    Implementation constraint: these bodies may use 64-bit IR operations
    only where the selector expands them inline (add/sub/mul/logic and
    *constant-amount* shifts); variable shifts and division would recurse
    into this library. *)

open Zkopt_ir
module B = Builder

let i64 = Ty.I64
let i32 = Ty.I32

(* -- 64-bit shifts ------------------------------------------------- *)

(* Decompose an I64 value into 32-bit halves (constant shifts only). *)
let halves b x =
  let lo = B.trunc b x in
  let hi = B.trunc b (B.lshr ~ty:i64 b x (B.imm 32)) in
  (lo, hi)

let join b ~lo ~hi =
  let lo64 = B.zext b lo in
  let hi64 = B.shl ~ty:i64 b (B.zext b hi) (B.imm 32) in
  B.or_ ~ty:i64 b hi64 lo64

let define_shift m name ~emit_cases =
  ignore
    (B.define m name ~params:[ i64; i64 ] ~ret:i64 (fun b ps ->
         let x = List.nth ps 0 and n64 = List.nth ps 1 in
         let n = B.and_ b (B.trunc b n64) (B.imm 63) in
         let lo, hi = halves b x in
         let res = B.var b i64 x in
         emit_cases b ~x ~n ~lo ~hi ~res;
         B.ret b (Some (Value.Reg res))))

let shifts m =
  define_shift m "__ashldi3" ~emit_cases:(fun b ~x ~n ~lo ~hi ~res ->
      ignore x;
      let is_zero = B.icmp b Instr.Eq n (B.imm 0) in
      B.if_ b is_zero
        ~then_:(fun () -> ())
        ~else_:(fun () ->
          let lt32 = B.icmp b Instr.Ult n (B.imm 32) in
          B.if_ b lt32
            ~then_:(fun () ->
              let inv = B.sub b (B.imm 32) n in
              let nh = B.or_ b (B.shl b hi n) (B.lshr b lo inv) in
              let nl = B.shl b lo n in
              B.set b i64 res (join b ~lo:nl ~hi:nh))
            ~else_:(fun () ->
              let n' = B.sub b n (B.imm 32) in
              let nh = B.shl b lo n' in
              B.set b i64 res (join b ~lo:(B.imm 0) ~hi:nh))
            ())
        ());
  define_shift m "__lshrdi3" ~emit_cases:(fun b ~x ~n ~lo ~hi ~res ->
      ignore x;
      let is_zero = B.icmp b Instr.Eq n (B.imm 0) in
      B.if_ b is_zero
        ~then_:(fun () -> ())
        ~else_:(fun () ->
          let lt32 = B.icmp b Instr.Ult n (B.imm 32) in
          B.if_ b lt32
            ~then_:(fun () ->
              let inv = B.sub b (B.imm 32) n in
              let nl = B.or_ b (B.lshr b lo n) (B.shl b hi inv) in
              let nh = B.lshr b hi n in
              B.set b i64 res (join b ~lo:nl ~hi:nh))
            ~else_:(fun () ->
              let n' = B.sub b n (B.imm 32) in
              let nl = B.lshr b hi n' in
              B.set b i64 res (join b ~lo:nl ~hi:(B.imm 0)))
            ())
        ());
  define_shift m "__ashrdi3" ~emit_cases:(fun b ~x ~n ~lo ~hi ~res ->
      ignore x;
      let is_zero = B.icmp b Instr.Eq n (B.imm 0) in
      B.if_ b is_zero
        ~then_:(fun () -> ())
        ~else_:(fun () ->
          let lt32 = B.icmp b Instr.Ult n (B.imm 32) in
          B.if_ b lt32
            ~then_:(fun () ->
              let inv = B.sub b (B.imm 32) n in
              let nl = B.or_ b (B.lshr b lo n) (B.shl b hi inv) in
              let nh = B.ashr b hi n in
              B.set b i64 res (join b ~lo:nl ~hi:nh))
            ~else_:(fun () ->
              let n' = B.sub b n (B.imm 32) in
              let nl = B.ashr b hi n' in
              let nh = B.ashr b hi (B.imm 31) in
              B.set b i64 res (join b ~lo:nl ~hi:nh))
            ())
        ())

(* -- 64-bit division ----------------------------------------------- *)

(* Restoring shift-subtract division; constant shifts only so the body
   never calls back into the runtime. *)
let emit_udivmod b ~num ~den ~want_rem =
  let q = B.var b i64 (B.imm 0) in
  let r = B.var b i64 (B.imm 0) in
  let rem = B.var b i64 num in
  B.for_ b ~from:(B.imm 0) ~bound:(B.imm 64) (fun _ ->
      let top = B.lshr ~ty:i64 b (Value.Reg rem) (B.imm 63) in
      B.set b i64 r (B.or_ ~ty:i64 b (B.shl ~ty:i64 b (Value.Reg r) (B.imm 1)) top);
      B.set b i64 rem (B.shl ~ty:i64 b (Value.Reg rem) (B.imm 1));
      B.set b i64 q (B.shl ~ty:i64 b (Value.Reg q) (B.imm 1));
      let ge = B.icmp ~ty:i64 b Instr.Uge (Value.Reg r) den in
      B.if_ b ge
        ~then_:(fun () ->
          B.set b i64 r (B.sub ~ty:i64 b (Value.Reg r) den);
          B.set b i64 q (B.or_ ~ty:i64 b (Value.Reg q) (B.imm 1)))
        ());
  if want_rem then Value.Reg r else Value.Reg q

let udiv_funcs m =
  ignore
    (B.define m "__udivdi3" ~params:[ i64; i64 ] ~ret:i64 (fun b ps ->
         let a = List.nth ps 0 and d = List.nth ps 1 in
         let dz = B.icmp ~ty:i64 b Instr.Eq d (B.imm 0) in
         B.if_ b dz ~then_:(fun () -> B.ret b (Some (B.imm64 (-1L)))) ();
         B.ret b (Some (emit_udivmod b ~num:a ~den:d ~want_rem:false))));
  ignore
    (B.define m "__umoddi3" ~params:[ i64; i64 ] ~ret:i64 (fun b ps ->
         let a = List.nth ps 0 and d = List.nth ps 1 in
         let dz = B.icmp ~ty:i64 b Instr.Eq d (B.imm 0) in
         B.if_ b dz ~then_:(fun () -> B.ret b (Some a)) ();
         B.ret b (Some (emit_udivmod b ~num:a ~den:d ~want_rem:true))))

let sdiv_funcs m =
  let abs64 b v =
    let neg = B.icmp ~ty:i64 b Instr.Slt v (B.imm 0) in
    let negated = B.sub ~ty:i64 b (B.imm 0) v in
    (B.select ~ty:i64 b neg negated v, neg)
  in
  ignore
    (B.define m "__divdi3" ~params:[ i64; i64 ] ~ret:i64 (fun b ps ->
         let a = List.nth ps 0 and d = List.nth ps 1 in
         let dz = B.icmp ~ty:i64 b Instr.Eq d (B.imm 0) in
         B.if_ b dz ~then_:(fun () -> B.ret b (Some (B.imm64 (-1L)))) ();
         let au, aneg = abs64 b a in
         let du, dneg = abs64 b d in
         let qu = B.callv b "__udivdi3" [ au; du ] in
         let sign = B.xor b aneg dneg in
         let qneg = B.sub ~ty:i64 b (B.imm 0) qu in
         B.ret b (Some (B.select ~ty:i64 b sign qneg qu))));
  ignore
    (B.define m "__moddi3" ~params:[ i64; i64 ] ~ret:i64 (fun b ps ->
         let a = List.nth ps 0 and d = List.nth ps 1 in
         let dz = B.icmp ~ty:i64 b Instr.Eq d (B.imm 0) in
         B.if_ b dz ~then_:(fun () -> B.ret b (Some a)) ();
         let au, aneg = abs64 b a in
         let du, _ = abs64 b d in
         let ru = B.callv b "__umoddi3" [ au; du ] in
         let rneg = B.sub ~ty:i64 b (B.imm 0) ru in
         B.ret b (Some (B.select ~ty:i64 b aneg rneg ru))))

(* -- word memset/memcpy (loop-idiom targets) ------------------------ *)

let mem_funcs m =
  ignore
    (B.define m "memset_w" ~params:[ Ty.Ptr; i32; i32 ] (fun b ps ->
         let dst = List.nth ps 0 and v = List.nth ps 1 and n = List.nth ps 2 in
         B.for_ b ~from:(B.imm 0) ~bound:n (fun i ->
             B.store b ~addr:(B.addr b dst ~index:i) v);
         B.ret b None));
  ignore
    (B.define m "memcpy_w" ~params:[ Ty.Ptr; Ty.Ptr; i32 ] (fun b ps ->
         let dst = List.nth ps 0 and src = List.nth ps 1 and n = List.nth ps 2 in
         B.for_ b ~from:(B.imm 0) ~bound:n (fun i ->
             let v = B.load b (B.addr b src ~index:i) in
             B.store b ~addr:(B.addr b dst ~index:i) v);
         B.ret b None))

(* -- soft SHA-256 compression (no precompile) ------------------------ *)

let sha256_soft m =
  let k_table = B.global_words m "__sha256_k" Extern.sha256_k in
  ignore
    (B.define m "sha256_compress_soft" ~params:[ Ty.Ptr; Ty.Ptr ] (fun b ps ->
         let state = List.nth ps 0 and block = List.nth ps 1 in
         let w = B.alloca b (64 * 4) in
         let rotr x n =
           B.or_ b (B.lshr b x (B.imm n)) (B.shl b x (B.imm (32 - n)))
         in
         B.for_ b ~from:(B.imm 0) ~bound:(B.imm 16) (fun t ->
             let v = B.load b (B.addr b block ~index:t) in
             B.store b ~addr:(B.addr b w ~index:t) v);
         B.for_ b ~from:(B.imm 16) ~bound:(B.imm 64) (fun t ->
             let at k = B.load b (B.addr b w ~index:(B.add b t (B.imm (-k)))) in
             let w15 = at 15 and w2 = at 2 and w16 = at 16 and w7 = at 7 in
             let s0 = B.xor b (rotr w15 7) (B.xor b (rotr w15 18) (B.lshr b w15 (B.imm 3))) in
             let s1 = B.xor b (rotr w2 17) (B.xor b (rotr w2 19) (B.lshr b w2 (B.imm 10))) in
             let v = B.add b (B.add b w16 s0) (B.add b w7 s1) in
             B.store b ~addr:(B.addr b w ~index:t) v);
         let ld p i = B.load b (B.addr b p ~index:(B.imm i)) in
         let a = B.var b i32 (ld state 0) and bb = B.var b i32 (ld state 1) in
         let c = B.var b i32 (ld state 2) and d = B.var b i32 (ld state 3) in
         let e = B.var b i32 (ld state 4) and f = B.var b i32 (ld state 5) in
         let g = B.var b i32 (ld state 6) and h = B.var b i32 (ld state 7) in
         let v r = Value.Reg r in
         B.for_ b ~from:(B.imm 0) ~bound:(B.imm 64) (fun t ->
             let s1 = B.xor b (rotr (v e) 6) (B.xor b (rotr (v e) 11) (rotr (v e) 25)) in
             let not_e = B.xor b (v e) (B.imm (-1)) in
             let ch = B.xor b (B.and_ b (v e) (v f)) (B.and_ b not_e (v g)) in
             let kt = B.load b (B.addr b k_table ~index:t) in
             let wt = B.load b (B.addr b w ~index:t) in
             let t1 = B.add b (B.add b (v h) s1) (B.add b ch (B.add b kt wt)) in
             let s0 = B.xor b (rotr (v a) 2) (B.xor b (rotr (v a) 13) (rotr (v a) 22)) in
             let maj =
               B.xor b (B.and_ b (v a) (v bb))
                 (B.xor b (B.and_ b (v a) (v c)) (B.and_ b (v bb) (v c)))
             in
             let t2 = B.add b s0 maj in
             B.set b i32 h (v g);
             B.set b i32 g (v f);
             B.set b i32 f (v e);
             B.set b i32 e (B.add b (v d) t1);
             B.set b i32 d (v c);
             B.set b i32 c (v bb);
             B.set b i32 bb (v a);
             B.set b i32 a (B.add b t1 t2));
         let upd i r =
           let cur = ld state i in
           B.store b ~addr:(B.addr b state ~index:(B.imm i)) (B.add b cur (v r))
         in
         upd 0 a; upd 1 bb; upd 2 c; upd 3 d; upd 4 e; upd 5 f; upd 6 g; upd 7 h;
         B.ret b None))

(* -- softfloat (simplified binary64: normals and zero only) ---------- *)

(* Used by the FP-emulation-cost experiments.  NaN/Inf/subnormals are out
   of scope (DESIGN.md); the property tests compare against host floats
   on normal values only. *)
let softfloat m =
  let unpack b x =
    (* sign (I32 0/1), exponent (I32), mantissa with implicit bit (I64) *)
    let sign = B.trunc b (B.lshr ~ty:i64 b x (B.imm 63)) in
    let expo = B.and_ b (B.trunc b (B.lshr ~ty:i64 b x (B.imm 52))) (B.imm 0x7FF) in
    let mant = B.and_ ~ty:i64 b x (B.imm64 0xF_FFFF_FFFF_FFFFL) in
    let is_zero = B.icmp b Instr.Eq expo (B.imm 0) in
    let with_implicit = B.or_ ~ty:i64 b mant (B.imm64 0x10_0000_0000_0000L) in
    let mant = B.select ~ty:i64 b is_zero (B.imm 0) with_implicit in
    (sign, expo, mant)
  in
  let pack b ~sign ~expo ~mant =
    (* mant has the implicit bit at position 52 *)
    let m52 = B.and_ ~ty:i64 b mant (B.imm64 0xF_FFFF_FFFF_FFFFL) in
    let e = B.shl ~ty:i64 b (B.zext b expo) (B.imm 52) in
    let s = B.shl ~ty:i64 b (B.zext b sign) (B.imm 63) in
    B.or_ ~ty:i64 b s (B.or_ ~ty:i64 b e m52)
  in
  ignore
    (B.define m "f64_mul" ~params:[ i64; i64 ] ~ret:i64 (fun b ps ->
         let x = List.nth ps 0 and y = List.nth ps 1 in
         let sx, ex, mx = unpack b x in
         let sy, ey, my = unpack b y in
         let sign = B.xor b sx sy in
         (* zero operands *)
         let xz = B.icmp ~ty:i64 b Instr.Eq mx (B.imm 0) in
         let yz = B.icmp ~ty:i64 b Instr.Eq my (B.imm 0) in
         let any_zero = B.or_ b xz yz in
         B.if_ b any_zero
           ~then_:(fun () ->
             B.ret b (Some (pack b ~sign ~expo:(B.imm 0) ~mant:(B.imm 0))))
           ();
         (* 53x53 -> keep top: (mx * my) >> 52, using the high parts *)
         let mx_hi = B.lshr ~ty:i64 b mx (B.imm 26) in
         let my_hi = B.lshr ~ty:i64 b my (B.imm 26) in
         let prod = B.mul ~ty:i64 b mx_hi my_hi in  (* ~2^54 scale *)
         let e = B.add b (B.add b ex ey) (B.imm (-1023)) in
         let expo = B.var b i32 e in
         let mant = B.var b i64 prod in
         (* normalize: product of two [2^26,2^27) values is in [2^52,2^54) *)
         let too_big = B.icmp ~ty:i64 b Instr.Uge (Value.Reg mant) (B.imm64 0x20_0000_0000_0000L) in
         B.if_ b too_big
           ~then_:(fun () ->
             B.set b i64 mant (B.lshr ~ty:i64 b (Value.Reg mant) (B.imm 1));
             B.set b i32 expo (B.add b (Value.Reg expo) (B.imm 1)))
           ();
         B.ret b (Some (pack b ~sign ~expo:(Value.Reg expo) ~mant:(Value.Reg mant)))));
  ignore
    (B.define m "f64_add" ~params:[ i64; i64 ] ~ret:i64 (fun b ps ->
         let x = List.nth ps 0 and y = List.nth ps 1 in
         let sx, ex, mx = unpack b x in
         let sy, ey, my = unpack b y in
         (* order so |x| >= |y| by exponent (mantissa tie ignored: small
            rounding differences are acceptable for the cost study) *)
         let swap = B.icmp b Instr.Slt ex ey in
         let ea = B.select b swap ey ex and eb = B.select b swap ex ey in
         let ma = B.select ~ty:i64 b swap my mx and mb = B.select ~ty:i64 b swap mx my in
         let sa = B.select b swap sy sx and sb = B.select b swap sx sy in
         let diff = B.sub b ea eb in
         let big = B.icmp b Instr.Sgt diff (B.imm 55) in
         B.if_ b big
           ~then_:(fun () -> B.ret b (Some (pack b ~sign:sa ~expo:ea ~mant:ma)))
           ();
         let mb_shifted = B.callv b "__lshrdi3" [ mb; B.zext b diff ] in
         let same_sign = B.icmp b Instr.Eq sa sb in
         let expo = B.var b i32 ea in
         let mant = B.var b i64 (B.imm 0) in
         let sign = B.var b i32 sa in
         B.if_ b same_sign
           ~then_:(fun () ->
             B.set b i64 mant (B.add ~ty:i64 b ma mb_shifted);
             let carry = B.icmp ~ty:i64 b Instr.Uge (Value.Reg mant) (B.imm64 0x20_0000_0000_0000L) in
             B.if_ b carry
               ~then_:(fun () ->
                 B.set b i64 mant (B.lshr ~ty:i64 b (Value.Reg mant) (B.imm 1));
                 B.set b i32 expo (B.add b (Value.Reg expo) (B.imm 1)))
               ())
           ~else_:(fun () ->
             B.set b i64 mant (B.sub ~ty:i64 b ma mb_shifted);
             let zero = B.icmp ~ty:i64 b Instr.Eq (Value.Reg mant) (B.imm 0) in
             B.if_ b zero
               ~then_:(fun () ->
                 B.ret b (Some (B.imm64 0L)))
               ();
             (* renormalize: shift left until the implicit bit returns *)
             B.while_ b
               (fun () ->
                 B.icmp ~ty:i64 b Instr.Ult (Value.Reg mant) (B.imm64 0x10_0000_0000_0000L))
               (fun () ->
                 B.set b i64 mant (B.shl ~ty:i64 b (Value.Reg mant) (B.imm 1));
                 B.set b i32 expo (B.add b (Value.Reg expo) (B.imm (-1))));
             ())
           ();
         B.ret b
           (Some (pack b ~sign:(Value.Reg sign) ~expo:(Value.Reg expo) ~mant:(Value.Reg mant)))))

(* Runtime functions are ABI entry points: the backend materializes calls
   to them during lowering and the loop-idiom pass creates memset_w calls,
   so interprocedural passes must not rewrite their signatures. *)
let mark_external (m : Modul.t) names =
  List.iter
    (fun n ->
      match Modul.find_func m n with
      | Some f -> f.Func.attrs.Func.internal <- false
      | None -> ())
    names

(** Add every runtime function (and its support globals) to [m].  Names
    already present are skipped, so workloads may provide specialized
    versions. *)
let link (m : Modul.t) =
  let have name = Modul.find_func m name <> None in
  if not (have "__ashldi3") then shifts m;
  if not (have "__udivdi3") then udiv_funcs m;
  if not (have "__divdi3") then sdiv_funcs m;
  if not (have "memset_w") then mem_funcs m;
  if not (have "sha256_compress_soft") && Modul.find_global m "__sha256_k" = None
  then sha256_soft m;
  if not (have "f64_mul") then softfloat m;
  mark_external m
    [ "__ashldi3"; "__lshrdi3"; "__ashrdi3"; "__udivdi3"; "__umoddi3";
      "__divdi3"; "__moddi3"; "memset_w"; "memcpy_w"; "sha256_compress_soft";
      "f64_mul"; "f64_add" ]

(** Names of all runtime functions (for pruning and tests). *)
let names =
  [ "__ashldi3"; "__lshrdi3"; "__ashrdi3"; "__udivdi3"; "__umoddi3";
    "__divdi3"; "__moddi3"; "memset_w"; "memcpy_w"; "sha256_compress_soft";
    "f64_mul"; "f64_add" ]
