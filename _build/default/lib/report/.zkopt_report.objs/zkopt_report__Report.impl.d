lib/report/report.ml: Array Float List Printf String
