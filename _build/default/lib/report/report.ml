(** ASCII table/series rendering for the bench harness: every table and
    figure of the paper is reproduced as one of these blocks, with the
    paper's reported values printed alongside for comparison. *)

let hr width = String.make width '-'

let section title =
  let line = hr (max 60 (String.length title + 4)) in
  Printf.printf "\n%s\n= %s\n%s\n" line title line

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  %s\n" s) fmt

let paper fmt =
  Printf.ksprintf (fun s -> Printf.printf "  [paper] %s\n" s) fmt

(** Render rows with left-aligned first column and right-aligned rest. *)
let table ~headers rows =
  let cols = List.length headers in
  let widths = Array.make cols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure headers;
  List.iter measure rows;
  let render row =
    String.concat "  "
      (List.mapi
         (fun i cell ->
           if i = 0 then Printf.sprintf "%-*s" widths.(i) cell
           else Printf.sprintf "%*s" widths.(i) cell)
         row)
  in
  Printf.printf "  %s\n" (render headers);
  Printf.printf "  %s\n" (hr (String.length (render headers)));
  List.iter (fun row -> Printf.printf "  %s\n" (render row)) rows

let pct v = Printf.sprintf "%+.1f%%" v
let f2 v = Printf.sprintf "%.2f" v
let f1 v = Printf.sprintf "%.1f" v
let int_s v = string_of_int v

(** A simple horizontal bar for figure-like output. *)
let bar ?(scale = 1.0) v =
  let n = int_of_float (Float.abs v *. scale) in
  let n = min n 40 in
  if v >= 0.0 then String.make n '+' else String.make n '-'
