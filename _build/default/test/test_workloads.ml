(** Workload suite tests: composition matches the paper's Appendix B,
    every program runs identically under the interpreter and the compiled
    RV32 binary, and the runtime library is correct against the host. *)

open Zkopt_ir

let test_composition () =
  Zkopt_workloads.Suite.check_composition ();
  Alcotest.(check int) "58 programs" 58
    (List.length (Zkopt_workloads.Workload.all ()))

let differential (w : Zkopt_workloads.Workload.t) () =
  let m = w.Zkopt_workloads.Workload.build Zkopt_workloads.Workload.Quick in
  Zkopt_runtime.Runtime.link m;
  Verify.check m;
  let expected = Interp.checksum m in
  let got, _ = Zkopt_riscv.Codegen.run m in
  Alcotest.(check int64) "interp = emulator" expected
    (Eval.norm32 (Int64.of_int32 got));
  (* and under -O3 the checksum is preserved end to end *)
  let m2 = w.Zkopt_workloads.Workload.build Zkopt_workloads.Workload.Quick in
  Zkopt_runtime.Runtime.link m2;
  Zkopt_passes.Catalog.run_level Zkopt_passes.Catalog.O3 m2;
  Verify.check m2;
  let got2, _ = Zkopt_riscv.Codegen.run m2 in
  Alcotest.(check int64) "-O3 preserves checksum" expected
    (Eval.norm32 (Int64.of_int32 got2))

(* runtime library: division/shift helpers vs host arithmetic *)
let test_runtime_divmod () =
  let module B = Builder in
  let cases =
    [ (123456789012345L, 997L); (-9876543210L, 31L); (5L, 0L);
      (Int64.min_int, -1L); (Int64.max_int, 2L); (-1L, 3L) ]
  in
  List.iteri
    (fun idx (a, d) ->
      let m = Modul.create () in
      ignore
        (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
             let q = B.sdiv ~ty:Ty.I64 b (B.imm64 a) (B.imm64 d) in
             let r = B.srem ~ty:Ty.I64 b (B.imm64 a) (B.imm64 d) in
             let uq = B.udiv ~ty:Ty.I64 b (B.imm64 a) (B.imm64 d) in
             let x = B.xor ~ty:Ty.I64 b q (B.xor ~ty:Ty.I64 b r uq) in
             let lo = B.trunc b x in
             let hi = B.trunc b (B.lshr ~ty:Ty.I64 b x (B.imm 32)) in
             B.ret b (Some (B.xor b lo hi))));
      Zkopt_runtime.Runtime.link m;
      let expected = Interp.checksum m in
      let got, _ = Zkopt_riscv.Codegen.run m in
      Alcotest.(check int64)
        (Printf.sprintf "case %d" idx)
        expected
        (Eval.norm32 (Int64.of_int32 got)))
    cases

let prop_softfloat_matches_host =
  QCheck.Test.make ~name:"softfloat f64 add/mul vs host (normal values)"
    ~count:60
    QCheck.(pair (float_range (-1e6) 1e6) (float_range (-1e6) 1e6))
    (fun (x, y) ->
      QCheck.assume (Float.abs x > 1e-3 && Float.abs y > 1e-3);
      let module B = Builder in
      let m = Modul.create () in
      let bits = Int64.bits_of_float in
      ignore
        (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
             let s = B.callv b "f64_mul" [ B.imm64 (bits x); B.imm64 (bits y) ] in
             B.ret b (Some (B.trunc b (B.lshr ~ty:Ty.I64 b s (B.imm 32))))));
      Zkopt_runtime.Runtime.link m;
      let got = Interp.checksum m in
      let expect =
        Eval.norm32 (Int64.shift_right_logical (bits (x *. y)) 32)
      in
      (* the simplified mantissa path rounds coarsely: accept the top
         word within 1 ulp of its 20 mantissa bits *)
      Int64.abs (Int64.sub got expect) <= 2L)

let prop_precompile_sha_matches_soft =
  QCheck.Test.make ~name:"sha256 precompile == soft implementation" ~count:10
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let module B = Builder in
      let m = Modul.create () in
      let blk =
        Array.init 16 (fun i -> Int32.of_int ((seed * (i + 3)) land 0xFFFFFF))
      in
      ignore (B.global_words m "st1" Extern.sha256_init_state);
      ignore (B.global_words m "st2" Extern.sha256_init_state);
      ignore (B.global_words m "blk" blk);
      ignore
        (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
             B.precompile b "sha256_compress" [ Value.Glob "st1"; Value.Glob "blk" ];
             B.call b "sha256_compress_soft" [ Value.Glob "st2"; Value.Glob "blk" ];
             let diff = B.var b Ty.I32 (B.imm 0) in
             B.for_ b ~from:(B.imm 0) ~bound:(B.imm 8) (fun i ->
                 let a = B.load b (B.addr b (Value.Glob "st1") ~index:i) in
                 let c = B.load b (B.addr b (Value.Glob "st2") ~index:i) in
                 B.set b Ty.I32 diff (B.or_ b (Value.Reg diff) (B.xor b a c)));
             B.ret b (Some (Value.Reg diff))));
      Zkopt_runtime.Runtime.link m;
      Int64.equal (Interp.checksum m) 0L)

let tests =
  Alcotest.test_case "suite composition" `Quick test_composition
  :: Alcotest.test_case "runtime div/mod helpers" `Quick test_runtime_divmod
  :: QCheck_alcotest.to_alcotest prop_softfloat_matches_host
  :: QCheck_alcotest.to_alcotest prop_precompile_sha_matches_soft
  :: List.map
       (fun (w : Zkopt_workloads.Workload.t) ->
         Alcotest.test_case
           ("differential: " ^ w.Zkopt_workloads.Workload.name)
           `Quick (differential w))
       (Zkopt_workloads.Suite.all ())
