(** Unit tests for the IR core: evaluation semantics, builder/verifier,
    printer, interpreter, and memory. *)

open Zkopt_ir
module B = Builder

let check = Alcotest.check
let i64t = Alcotest.int64

(* ---- Eval ---------------------------------------------------------- *)

let test_eval_div_semantics () =
  (* RISC-V M semantics: x/0 = -1 (all ones), x%0 = x, overflow cases *)
  check i64t "sdiv32 by zero" 0xFFFF_FFFFL (Eval.binop Ty.I32 Instr.Div 5L 0L);
  check i64t "srem32 by zero" 5L (Eval.binop Ty.I32 Instr.Rem 5L 0L);
  check i64t "sdiv32 overflow" 0x8000_0000L
    (Eval.binop Ty.I32 Instr.Div 0x8000_0000L 0xFFFF_FFFFL);
  check i64t "srem32 overflow" 0L
    (Eval.binop Ty.I32 Instr.Rem 0x8000_0000L 0xFFFF_FFFFL);
  check i64t "sdiv64 by zero" (-1L) (Eval.binop Ty.I64 Instr.Div 5L 0L);
  check i64t "sdiv64 overflow" Int64.min_int
    (Eval.binop Ty.I64 Instr.Div Int64.min_int (-1L));
  check i64t "udiv64 by zero" (-1L) (Eval.binop Ty.I64 Instr.Udiv 7L 0L)

let test_eval_shifts_masked () =
  check i64t "shl32 masks to 31" 2L (Eval.binop Ty.I32 Instr.Shl 1L 33L);
  check i64t "shl64 masks to 63" 2L (Eval.binop Ty.I64 Instr.Shl 1L 65L);
  check i64t "ashr32 sign" 0xFFFF_FFFFL
    (Eval.binop Ty.I32 Instr.Ashr 0x8000_0000L 31L)

let test_eval_mulhu () =
  check i64t "mulhu32 max"
    0xFFFF_FFFEL
    (Eval.binop Ty.I32 Instr.Mulhu 0xFFFF_FFFFL 0xFFFF_FFFFL);
  check i64t "mulhu32 small" 0L (Eval.binop Ty.I32 Instr.Mulhu 10L 10L);
  (* 64-bit: (2^63)*(2) >> 64 = 1 *)
  check i64t "mulhu64" 1L
    (Eval.binop Ty.I64 Instr.Mulhu Int64.min_int 2L)

let test_eval_cmp () =
  check i64t "ult i32" 1L (Eval.cmp Ty.I32 Instr.Ult 1L 0xFFFF_FFFFL);
  check i64t "slt i32 signed" 1L (Eval.cmp Ty.I32 Instr.Slt 0xFFFF_FFFFL 0L);
  check i64t "ult i64" 1L (Eval.cmp Ty.I64 Instr.Ult 1L (-1L));
  check i64t "sge i64" 1L (Eval.cmp Ty.I64 Instr.Sge 0L (-1L))

(* ---- Builder + verifier ------------------------------------------- *)

let build_sum_program n =
  let m = Modul.create () in
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         let s = B.var b Ty.I32 (B.imm 0) in
         B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
             B.set b Ty.I32 s (B.add b (Value.Reg s) i));
         B.ret b (Some (Value.Reg s))));
  m

let test_builder_loop () =
  let m = build_sum_program 10 in
  Verify.check m;
  check i64t "sum 0..9" 45L (Interp.checksum m)

let test_verifier_rejects_bad_label () =
  let m = Modul.create () in
  let f = Func.create ~name:"main" ~params:[] ~ret:(Some Ty.I32) in
  Func.add_block f (Block.create ~term:(Instr.Br "nowhere") "entry");
  Modul.add_func m f;
  Alcotest.check_raises "dangling label"
    (Verify.Ill_formed "main: block entry branches to unknown label nowhere")
    (fun () -> Verify.check m)

let test_verifier_rejects_width_mismatch () =
  let m = Modul.create () in
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         let x = B.var b Ty.I64 (B.imm 1) in
         (* 32-bit add of a 64-bit register *)
         let bad = B.add b (Value.Reg x) (B.imm 1) in
         B.ret b (Some bad)));
  Alcotest.(check bool) "ill-formed" false (Verify.is_well_formed m)

let test_printer_roundtrip_smoke () =
  let m = build_sum_program 5 in
  let text = Printer.modul m in
  Alcotest.(check bool) "mentions main" true
    (Astring_contains.contains text "@main");
  Alcotest.(check bool) "mentions icmp" true
    (Astring_contains.contains text "icmp")

(* ---- Memory -------------------------------------------------------- *)

let test_memory_word_access () =
  let mem = Memory.create () in
  Memory.store32 mem 0x1000l 0xDEADBEEFl;
  Alcotest.(check int32) "load32" 0xDEADBEEFl (Memory.load32 mem 0x1000l);
  Memory.store64 mem 0x2000l 0x1122334455667788L;
  check i64t "load64" 0x1122334455667788L (Memory.load64 mem 0x2000l);
  Alcotest.(check int32) "low word LE" 0x55667788l (Memory.load32 mem 0x2000l)

let test_memory_misaligned_traps () =
  let mem = Memory.create () in
  Alcotest.check_raises "misaligned"
    (Failure "Memory: misaligned word access at 0x00001002") (fun () ->
      ignore (Memory.load32 mem 0x1002l))

(* ---- Interpreter --------------------------------------------------- *)

let test_interp_fuel () =
  let m = Modul.create () in
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         B.while_ b
           (fun () -> B.icmp b Instr.Eq (B.imm 0) (B.imm 0))
           (fun () -> ());
         B.ret b (Some (B.imm 0))));
  Alcotest.check_raises "fuel" Interp.Out_of_fuel (fun () ->
      ignore (Interp.run ~fuel:1000 m))

let test_interp_call_and_alloca () =
  let m = Modul.create () in
  ignore
    (B.define m "double_it" ~params:[ Ty.I32 ] ~ret:Ty.I32 (fun b ps ->
         let slot = B.alloca b 4 in
         B.store b ~addr:slot (List.nth ps 0);
         let v = B.load b slot in
         B.ret b (Some (B.add b v v))));
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         B.ret b (Some (B.callv b "double_it" [ B.imm 21 ]))));
  Verify.check m;
  check i64t "42" 42L (Interp.checksum m)

let tests =
  [
    Alcotest.test_case "eval div semantics" `Quick test_eval_div_semantics;
    Alcotest.test_case "eval shifts masked" `Quick test_eval_shifts_masked;
    Alcotest.test_case "eval mulhu" `Quick test_eval_mulhu;
    Alcotest.test_case "eval cmp" `Quick test_eval_cmp;
    Alcotest.test_case "builder loop" `Quick test_builder_loop;
    Alcotest.test_case "verifier dangling label" `Quick test_verifier_rejects_bad_label;
    Alcotest.test_case "verifier width mismatch" `Quick test_verifier_rejects_width_mismatch;
    Alcotest.test_case "printer smoke" `Quick test_printer_roundtrip_smoke;
    Alcotest.test_case "memory words" `Quick test_memory_word_access;
    Alcotest.test_case "memory misaligned" `Quick test_memory_misaligned_traps;
    Alcotest.test_case "interp fuel" `Quick test_interp_fuel;
    Alcotest.test_case "interp call+alloca" `Quick test_interp_call_and_alloca;
  ]
