(** Pass tests: targeted transformation checks plus the differential
    property harness (every pass preserves random-program semantics, at
    the IR and machine level). *)

open Zkopt_ir
open Zkopt_passes
module B = Builder

let check = Alcotest.check
let cfg = Pass.standard_config

let count_instrs_matching m pred =
  let n = ref 0 in
  List.iter
    (fun (f : Func.t) -> Func.iter_instrs f (fun _ i -> if pred i then incr n))
    m.Modul.funcs;
  !n

(* ---- targeted transformations -------------------------------------- *)

let test_constprop_folds () =
  let m = Modul.create () in
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         let x = B.add b (B.imm 2) (B.imm 3) in
         let y = B.mul b x (B.imm 10) in
         B.ret b (Some y)));
  ignore (Pass.run_sequence ~config:cfg [ "constprop"; "copyprop"; "constprop" ] m);
  check Alcotest.int64 "still 50" 50L (Interp.checksum m)

let test_dce_removes_dead () =
  let m = Modul.create () in
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         let _dead = B.mul b (B.imm 3) (B.imm 4) in
         let _dead2 = B.xor b (B.imm 1) (B.imm 2) in
         B.ret b (Some (B.imm 9))));
  let before = Modul.instr_count m in
  ignore (Pass.run_one ~config:cfg "dce" m);
  Alcotest.(check bool) "shrank" true (Modul.instr_count m < before);
  check Alcotest.int64 "9" 9L (Interp.checksum m)

let test_inline_removes_call () =
  let m = Modul.create () in
  ignore
    (B.define m "helper" ~params:[ Ty.I32 ] ~ret:Ty.I32 (fun b ps ->
         B.ret b (Some (B.add b (List.nth ps 0) (B.imm 5)))));
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         B.ret b (Some (B.callv b "helper" [ B.imm 37 ]))));
  let expected = Interp.checksum m in
  ignore (Pass.run_one ~config:cfg "inline" m);
  Verify.check m;
  check Alcotest.int64 "semantics" expected (Interp.checksum m);
  Alcotest.(check int) "no calls left" 0
    (count_instrs_matching m (function Instr.Call _ -> true | _ -> false))

let test_inline_respects_threshold () =
  let m = Modul.create () in
  ignore
    (B.define m "big" ~params:[ Ty.I32 ] ~ret:Ty.I32 (fun b ps ->
         let v = ref (List.nth ps 0) in
         for _ = 1 to 400 do
           v := B.add b !v (B.imm 1)
         done;
         B.ret b (Some !v)));
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         let a = B.callv b "big" [ B.imm 0 ] in
         let c = B.callv b "big" [ a ] in
         B.ret b (Some c)));
  let tiny = { cfg with Pass.inline_threshold = 10 } in
  ignore (Pass.run_one ~config:tiny "inline" m);
  Alcotest.(check int) "calls kept" 2
    (count_instrs_matching m (function Instr.Call _ -> true | _ -> false));
  let zk = Pass.zkvm_config in
  ignore (Pass.run_one ~config:zk "inline" m);
  Alcotest.(check int) "inlined under the 4328 threshold" 0
    (count_instrs_matching m (function Instr.Call _ -> true | _ -> false))

let test_licm_hoists () =
  let m = Modul.create () in
  ignore (B.global_zero m "arr" 400);
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         let base = B.var b Ty.I32 (B.imm 12345) in
         let s = B.var b Ty.I32 (B.imm 0) in
         B.for_ b ~from:(B.imm 0) ~bound:(B.imm 50) (fun _i ->
             (* loop-invariant computation *)
             let inv = B.mul b (Value.Reg base) (B.imm 99) in
             B.set b Ty.I32 s (B.add b (Value.Reg s) inv));
         B.ret b (Some (Value.Reg s))));
  let expected = Interp.checksum m in
  let before = (Interp.run m).Interp.instrs_executed in
  ignore (Pass.run_one ~config:cfg "licm" m);
  Verify.check m;
  check Alcotest.int64 "semantics" expected (Interp.checksum m);
  let after = (Interp.run m).Interp.instrs_executed in
  Alcotest.(check bool) "fewer dynamic instrs" true (after < before)

let test_unroll_full () =
  let m = Modul.create () in
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         let s = B.var b Ty.I32 (B.imm 0) in
         B.for_ b ~from:(B.imm 0) ~bound:(B.imm 6) (fun i ->
             B.set b Ty.I32 s (B.add b (Value.Reg s) (B.mul b i i)));
         B.ret b (Some (Value.Reg s))));
  let expected = Interp.checksum m in
  ignore (Pass.run_one ~config:cfg "loop-unroll" m);
  Verify.check m;
  check Alcotest.int64 "semantics" expected (Interp.checksum m);
  (* after constprop+simplifycfg the loop should be gone or bypassed: the
     dynamic branch count drops *)
  ignore (Pass.run_sequence ~config:cfg [ "constprop"; "simplifycfg"; "dce" ] m);
  check Alcotest.int64 "still" expected (Interp.checksum m)

let test_simplifycfg_if_converts () =
  let m = Modul.create () in
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         let x = B.var b Ty.I32 (B.imm (-7)) in
         let r = B.var b Ty.I32 (Value.Reg x) in
         let neg = B.icmp b Instr.Slt (Value.Reg x) (B.imm 0) in
         B.if_ b neg
           ~then_:(fun () -> B.set b Ty.I32 r (B.sub b (B.imm 0) (Value.Reg x)))
           ();
         B.ret b (Some (Value.Reg r))));
  ignore (Pass.run_one ~config:cfg "simplifycfg" m);
  Verify.check m;
  check Alcotest.int64 "abs(-7)" 7L (Interp.checksum m);
  Alcotest.(check bool) "has a select" true
    (count_instrs_matching m (function Instr.Select _ -> true | _ -> false) > 0);
  (* the zkVM-aware config must refuse the conversion *)
  let m2 = Modul.create () in
  ignore
    (B.define m2 "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         let x = B.var b Ty.I32 (B.imm (-7)) in
         let r = B.var b Ty.I32 (Value.Reg x) in
         let neg = B.icmp b Instr.Slt (Value.Reg x) (B.imm 0) in
         B.if_ b neg
           ~then_:(fun () -> B.set b Ty.I32 r (B.sub b (B.imm 0) (Value.Reg x)))
           ();
         B.ret b (Some (Value.Reg r))));
  ignore (Pass.run_one ~config:Pass.zkvm_config "simplifycfg" m2);
  Alcotest.(check int) "no select under zk config" 0
    (count_instrs_matching m2 (function Instr.Select _ -> true | _ -> false))

let test_strength_reduction_div () =
  let m = Modul.create () in
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         let x = B.var b Ty.I32 (B.imm 1000001) in
         let q = B.udiv b (Value.Reg x) (B.imm 7) in
         let r = B.urem b (Value.Reg x) (B.imm 16) in
         let d = B.sdiv b (Value.Reg x) (B.imm 8) in
         B.ret b (Some (B.add b q (B.add b r d)))));
  let expected = Interp.checksum m in
  ignore (Pass.run_one ~config:cfg "strength-reduction" m);
  Verify.check m;
  check Alcotest.int64 "semantics" expected (Interp.checksum m);
  Alcotest.(check int) "divisions gone" 0
    (count_instrs_matching m (function
      | Instr.Bin { op = Instr.Udiv | Div; b = Value.Imm _; _ } -> true
      | _ -> false));
  (* the zkVM config leaves divisions alone *)
  let m2 = Modul.create () in
  ignore
    (B.define m2 "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         B.ret b (Some (B.udiv b (B.imm 100) (B.imm 7)))));
  Alcotest.(check bool) "zk config: unchanged" false
    (Pass.run_one ~config:Pass.zkvm_config "strength-reduction" m2)

let test_tailcallelim () =
  let m = Modul.create () in
  ignore
    (B.define m "count" ~params:[ Ty.I32; Ty.I32 ] ~ret:Ty.I32 (fun b ps ->
         let n = List.nth ps 0 and acc = List.nth ps 1 in
         let base = B.icmp b Instr.Sle n (B.imm 0) in
         B.if_ b base ~then_:(fun () -> B.ret b (Some acc)) ();
         let r =
           B.callv b "count" [ B.sub b n (B.imm 1); B.add b acc n ]
         in
         B.ret b (Some r)));
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         B.ret b (Some (B.callv b "count" [ B.imm 100; B.imm 0 ]))));
  let expected = Interp.checksum m in
  Alcotest.(check bool) "changed" true (Pass.run_one ~config:cfg "tailcallelim" m);
  Verify.check m;
  check Alcotest.int64 "semantics" expected (Interp.checksum m);
  (* the recursion is now a loop: interp uses no extra frames, and the
     self-call is gone *)
  let count_f = Modul.find_func_exn m "count" in
  let self_calls = ref 0 in
  Func.iter_instrs count_f (fun _ i ->
      match i with
      | Instr.Call { callee = "count"; _ } -> incr self_calls
      | _ -> ());
  Alcotest.(check int) "no self call" 0 !self_calls

let test_loop_idiom_memset () =
  let m = Modul.create () in
  ignore (B.global_zero m "arr" (4 * 64));
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         B.for_ b ~from:(B.imm 0) ~bound:(B.imm 64) (fun i ->
             B.store b ~addr:(B.addr b (Value.Glob "arr") ~index:i) (B.imm 42));
         B.ret b (Some (B.load b (B.addr b (Value.Glob "arr") ~index:(B.imm 63))))));
  Zkopt_runtime.Runtime.link m;
  let expected = Interp.checksum m in
  Alcotest.(check bool) "changed" true (Pass.run_one ~config:cfg "loop-idiom" m);
  Verify.check m;
  check Alcotest.int64 "memset semantics" expected (Interp.checksum m);
  Alcotest.(check bool) "calls memset_w" true
    (count_instrs_matching m (function
      | Instr.Call { callee = "memset_w"; _ } -> true
      | _ -> false)
    > 0)

let test_globaldce_keeps_runtime () =
  let m = Modul.create () in
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         let q = B.udiv ~ty:Ty.I64 b (B.imm64 123456789L) (B.imm 7) in
         B.ret b (Some (B.trunc b q))));
  Zkopt_runtime.Runtime.link m;
  ignore (Pass.run_one ~config:cfg "globaldce" m);
  Alcotest.(check bool) "udivdi3 kept" true (Modul.find_func m "__udivdi3" <> None);
  Alcotest.(check bool) "sha soft dropped" true
    (Modul.find_func m "sha256_compress_soft" = None);
  (* and the program still compiles and runs *)
  let got, _ = Zkopt_riscv.Codegen.run m in
  check Alcotest.int64 "runs" (Interp.checksum m)
    (Eval.norm32 (Int64.of_int32 got))

let test_mergefunc () =
  let m = Modul.create () in
  let body b ps = B.ret b (Some (B.add b (List.nth ps 0) (B.imm 3))) in
  ignore (B.define m "f1" ~params:[ Ty.I32 ] ~ret:Ty.I32 body);
  ignore (B.define m "f2" ~params:[ Ty.I32 ] ~ret:Ty.I32 body);
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         let a = B.callv b "f1" [ B.imm 1 ] in
         let c = B.callv b "f2" [ B.imm 2 ] in
         B.ret b (Some (B.add b a c))));
  let expected = Interp.checksum m in
  Alcotest.(check bool) "merged" true (Pass.run_one ~config:cfg "mergefunc" m);
  Verify.check m;
  check Alcotest.int64 "semantics" expected (Interp.checksum m);
  Alcotest.(check int) "one copy left" 2 (List.length m.Modul.funcs)

(* ---- property tests ------------------------------------------------- *)

let prop_pass_preserves_semantics pass_name =
  QCheck.Test.make
    ~name:(Printf.sprintf "pass %s preserves semantics" pass_name)
    ~count:12
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let base = Randprog.generate ~seed () in
      Zkopt_runtime.Runtime.link base;
      let expected = Interp.checksum base in
      let m = Clone.modul base in
      ignore (Pass.run_one ~config:cfg pass_name m);
      Verify.check m;
      Int64.equal (Interp.checksum m) expected)

let prop_pipeline_matches_machine =
  QCheck.Test.make ~name:"O-levels preserve semantics down to RV32" ~count:8
    QCheck.(pair (int_range 1 100_000) (int_range 0 5))
    (fun (seed, lvl_idx) ->
      let base = Randprog.generate ~seed () in
      Zkopt_runtime.Runtime.link base;
      let expected = Interp.checksum base in
      let m = Clone.modul base in
      Catalog.run_level (List.nth Catalog.all_levels lvl_idx) m;
      Verify.check m;
      let got, _ = Zkopt_riscv.Codegen.run m in
      Int64.equal (Eval.norm32 (Int64.of_int32 got)) expected)

let prop_encode_decode =
  QCheck.Test.make ~name:"rv32 encode/decode roundtrip" ~count:500
    QCheck.(quad (int_range 0 31) (int_range 0 31) (int_range 0 31) (int_range (-2048) 2047))
    (fun (rd, rs1, rs2, imm) ->
      let open Zkopt_riscv in
      let samples =
        [ Isa.Op (Isa.XOR, rd, rs1, rs2); Isa.Opi (Isa.ADDI, rd, rs1, imm);
          Isa.Load (Isa.LW, rd, rs1, imm); Isa.Store (Isa.SW, rs2, rs1, imm);
          Isa.Branch (Isa.BLT, rs1, rs2, (imm / 2) * 2) ]
      in
      List.for_all (fun i -> Isa.decode (Isa.encode i) = i) samples)

let property_tests =
  List.map QCheck_alcotest.to_alcotest
    (prop_pipeline_matches_machine :: prop_encode_decode
    :: List.map prop_pass_preserves_semantics
         [ "inline"; "licm"; "loop-unroll"; "simplifycfg"; "gvn"; "sccp";
           "strength-reduction"; "mem2reg"; "reg2mem"; "jump-threading";
           "adce"; "dse"; "loop-rotate"; "loop-deletion"; "indvars";
           "tail-dup"; "early-cse"; "instcombine" ])

let tests =
  [
    Alcotest.test_case "constprop folds" `Quick test_constprop_folds;
    Alcotest.test_case "dce removes dead" `Quick test_dce_removes_dead;
    Alcotest.test_case "inline removes call" `Quick test_inline_removes_call;
    Alcotest.test_case "inline threshold" `Quick test_inline_respects_threshold;
    Alcotest.test_case "licm hoists" `Quick test_licm_hoists;
    Alcotest.test_case "unroll full" `Quick test_unroll_full;
    Alcotest.test_case "simplifycfg if-convert" `Quick test_simplifycfg_if_converts;
    Alcotest.test_case "strength reduction" `Quick test_strength_reduction_div;
    Alcotest.test_case "tailcallelim" `Quick test_tailcallelim;
    Alcotest.test_case "loop-idiom memset" `Quick test_loop_idiom_memset;
    Alcotest.test_case "globaldce keeps runtime" `Quick test_globaldce_keeps_runtime;
    Alcotest.test_case "mergefunc" `Quick test_mergefunc;
  ]
  @ property_tests
