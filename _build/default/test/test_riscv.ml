(** Backend tests: encoder/decoder round-trip, assembler relaxation,
    emulator semantics, register allocation under pressure, and the
    interp-vs-emulator differential on hand-picked programs. *)

open Zkopt_ir
open Zkopt_riscv
module B = Builder

let check = Alcotest.check

let sample_instrs =
  [ Isa.Lui (5, 0x12345000l); Isa.Auipc (6, 0x7FFFF000l);
    Isa.Jal (1, 2048); Isa.Jal (0, -4096); Isa.Jalr (1, 5, -12);
    Isa.Branch (Isa.BEQ, 5, 6, 16); Isa.Branch (Isa.BGEU, 7, 8, -64);
    Isa.Load (Isa.LW, 9, 2, 124); Isa.Load (Isa.LB, 10, 2, -4);
    Isa.Load (Isa.LHU, 11, 2, 2); Isa.Store (Isa.SW, 12, 2, -8);
    Isa.Store (Isa.SB, 13, 2, 100);
    Isa.Op (Isa.ADD, 5, 6, 7); Isa.Op (Isa.SUB, 5, 6, 7);
    Isa.Op (Isa.MULHU, 5, 6, 7); Isa.Op (Isa.REMU, 5, 6, 7);
    Isa.Opi (Isa.ADDI, 5, 6, -2048); Isa.Opi (Isa.SLTIU, 5, 6, 2047);
    Isa.Opi (Isa.SRAI, 5, 6, 31); Isa.Opi (Isa.SLLI, 5, 6, 1);
    Isa.Ecall ]

let test_encode_decode_roundtrip () =
  List.iter
    (fun i ->
      let d = Isa.decode (Isa.encode i) in
      Alcotest.(check string) (Isa.to_string i) (Isa.to_string i) (Isa.to_string d))
    sample_instrs

let test_branch_relaxation () =
  (* a conditional branch across >4KB of code must be relaxed *)
  let filler = List.init 1200 (fun _ -> Asm.Ins (Isa.Opi (Isa.ADDI, 5, 5, 1))) in
  let unit_ =
    { Asm.name = "main";
      items =
        [ Asm.Label "start"; Asm.Bc (Isa.BEQ, 5, 0, "far") ]
        @ filler
        @ [ Asm.Label "far"; Asm.Li (17, 0l); Asm.Ins Isa.Ecall ] }
  in
  let globals = Hashtbl.create 1 in
  let prog = Asm.assemble ~globals ~data_end:0x20000l [ unit_ ] in
  (* it must execute correctly: x5 = 0 so the branch is taken *)
  let m = Modul.create () in
  let emu = Emulator.create prog m in
  ignore (Emulator.run emu);
  (* the relaxed form executes 2 instructions for the taken branch
     (inverted short branch + jal), then li a7 and ecall *)
  Alcotest.(check int) "filler skipped" 4 emu.Emulator.retired

let test_emulator_arith () =
  (* spot-check a few alu ops against Eval *)
  List.iter
    (fun (op, iop) ->
      let a = 0xDEADBEEFl and b = 37l in
      let got = Emulator.alu_op op a b in
      let expect =
        Eval.binop Ty.I32 iop
          (Eval.norm32 (Int64.of_int32 a))
          (Eval.norm32 (Int64.of_int32 b))
      in
      check Alcotest.int32 (Isa.rop_name op) (Int64.to_int32 expect) got)
    [ (Isa.ADD, Instr.Add); (Isa.SUB, Instr.Sub); (Isa.MUL, Instr.Mul);
      (Isa.MULHU, Instr.Mulhu); (Isa.DIV, Instr.Div); (Isa.REM, Instr.Rem);
      (Isa.DIVU, Instr.Udiv); (Isa.REMU, Instr.Urem); (Isa.AND, Instr.And);
      (Isa.SLL, Instr.Shl); (Isa.SRA, Instr.Ashr) ]

(* register pressure: a block with 30 simultaneously-live values forces
   spilling, and the result must still be correct *)
let test_regalloc_spilling () =
  let m = Modul.create () in
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         let vals =
           List.init 30 (fun k ->
               B.mul b (B.imm (k + 1)) (B.imm (k + 3)))
         in
         let sum =
           List.fold_left (fun acc v -> B.add b acc v) (B.imm 0) vals
         in
         B.ret b (Some sum)));
  Verify.check m;
  let expected = Interp.checksum m in
  let got, _ = Codegen.run m in
  check Alcotest.int64 "spill-correct" expected
    (Eval.norm32 (Int64.of_int32 got));
  (* and it genuinely spilled *)
  let cg = Codegen.compile m in
  let spills =
    List.fold_left (fun acc s -> acc + s.Codegen.spill_slots) 0 cg.Codegen.stats
  in
  Alcotest.(check bool) "spilled" true (spills > 0)

(* cross-call survival of values: caller-saved discipline *)
let test_values_survive_calls () =
  let m = Modul.create () in
  ignore
    (B.define m "id" ~params:[ Ty.I32 ] ~ret:Ty.I32 (fun b ps ->
         B.ret b (Some (List.nth ps 0))));
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         let a = B.mul b (B.imm 1234) (B.imm 77) in
         let r1 = B.callv b "id" [ B.imm 1 ] in
         let r2 = B.callv b "id" [ B.imm 2 ] in
         B.ret b (Some (B.add b a (B.add b r1 r2)))));
  Verify.check m;
  let expected = Interp.checksum m in
  let got, _ = Codegen.run m in
  check Alcotest.int64 "live across calls" expected
    (Eval.norm32 (Int64.of_int32 got))

let test_fallthrough_elision () =
  (* the selector drops jumps to the immediately following label *)
  let m = Modul.create () in
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         let c = B.icmp b Instr.Eq (B.imm 1) (B.imm 1) in
         let r = B.var b Ty.I32 (B.imm 0) in
         B.if_ b c ~then_:(fun () -> B.set b Ty.I32 r (B.imm 7)) ();
         B.ret b (Some (Value.Reg r))));
  let got, _ = Codegen.run m in
  check Alcotest.int32 "fallthrough" 7l got

let tests =
  [
    Alcotest.test_case "encode/decode roundtrip" `Quick test_encode_decode_roundtrip;
    Alcotest.test_case "branch relaxation" `Quick test_branch_relaxation;
    Alcotest.test_case "emulator arithmetic" `Quick test_emulator_arith;
    Alcotest.test_case "regalloc spilling" `Quick test_regalloc_spilling;
    Alcotest.test_case "values survive calls" `Quick test_values_survive_calls;
    Alcotest.test_case "fallthrough elision" `Quick test_fallthrough_elision;
  ]
