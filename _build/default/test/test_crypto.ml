(** Known-answer tests for the cryptographic primitives behind the
    precompiles, plus precompile dispatch checks. *)

open Zkopt_ir

(* SHA-256("abc"): compressing the standard padded block (words in the
   big-endian interpretation FIPS 180-4 uses) must yield the canonical
   digest. *)
let test_sha256_abc () =
  let block = Array.make 16 0l in
  block.(0) <- 0x61626380l;
  block.(15) <- 24l;
  let state = Array.copy Extern.sha256_init_state in
  Extern.sha256_compress_words state block;
  let expected =
    [| 0xBA7816BFl; 0x8F01CFEAl; 0x414140DEl; 0x5DAE2223l; 0xB00361A3l;
       0x96177A9Cl; 0xB410FF61l; 0xF20015ADl |]
  in
  Array.iteri
    (fun i w ->
      Alcotest.(check int32) (Printf.sprintf "digest[%d]" i) expected.(i) w)
    state

(* Keccak-f[1600] on the all-zero state: the first lane of the XKCP
   reference test vector (bytes E7 DD E1 40 79 8F 25 F1, little-endian),
   plus determinism and avalanche sanity. *)
let test_keccakf_zero_state () =
  let st = Array.make 25 0L in
  Extern.keccak_f st;
  Alcotest.(check int64) "lane 0" 0xF1258F7940E1DDE7L st.(0);
  Alcotest.(check bool) "all lanes populated" true
    (Array.for_all (fun l -> not (Int64.equal l 0L)) st);
  let st2 = Array.make 25 0L in
  Extern.keccak_f st2;
  Alcotest.(check bool) "deterministic" true (st = st2);
  (* flipping one input bit changes (far) more than one output lane *)
  let st3 = Array.make 25 0L in
  st3.(0) <- 1L;
  Extern.keccak_f st3;
  let differing = ref 0 in
  Array.iteri (fun i l -> if not (Int64.equal l st.(i)) then incr differing) st3;
  Alcotest.(check bool) "avalanche" true (!differing >= 20)

(* The simulated signature precompiles: a tag derived by the documented
   scheme verifies; a perturbed tag does not. *)
let test_signature_scheme () =
  let mem_tbl = Hashtbl.create 64 in
  let mem =
    { Extern.load32 = (fun a -> Option.value ~default:0l (Hashtbl.find_opt mem_tbl a));
      store32 = (fun a v -> Hashtbl.replace mem_tbl a v) }
  in
  (* msg at 0x100 (4 words), key at 0x200, sig at 0x300 *)
  for i = 0 to 3 do
    mem.Extern.store32 (Int32.of_int (0x100 + (4 * i))) (Int32.of_int (100 + i))
  done;
  for i = 0 to 7 do
    mem.Extern.store32 (Int32.of_int (0x200 + (4 * i))) (Int32.of_int (7 * i))
  done;
  let tag =
    Extern.signature_tag ~separator:0x0ecd5a01l mem ~msg_ptr:0x100l
      ~msg_words:4 ~key_ptr:0x200l
  in
  Array.iteri
    (fun i w -> mem.Extern.store32 (Int32.of_int (0x300 + (4 * i))) w)
    tag;
  let args = [| 0x100L; 4L; 0x300L; 0x200L |] in
  Alcotest.(check (option int64)) "valid signature" (Some 1L)
    (Extern.run "ecdsa_verify" mem args);
  (* flip a bit *)
  mem.Extern.store32 0x300l (Int32.logxor tag.(0) 1l);
  Alcotest.(check (option int64)) "tampered signature" (Some 0L)
    (Extern.run "ecdsa_verify" mem args);
  (* the ed25519 separator yields a different tag *)
  let tag2 =
    Extern.signature_tag ~separator:0x0ed25519l mem ~msg_ptr:0x100l
      ~msg_words:4 ~key_ptr:0x200l
  in
  Alcotest.(check bool) "domain separation" false (tag = tag2)

let test_bigint_mulmod () =
  let mem_tbl = Hashtbl.create 64 in
  let mem =
    { Extern.load32 = (fun a -> Option.value ~default:0l (Hashtbl.find_opt mem_tbl a));
      store32 = (fun a v -> Hashtbl.replace mem_tbl a v) }
  in
  (* a = 7, b = 9, m = 5 over 8-word LE buffers -> 63 mod 5 = 3 *)
  let write base v = mem.Extern.store32 base (Int32.of_int v) in
  write 0x100l 7;
  write 0x140l 9;
  write 0x180l 5;
  ignore (Extern.run "bigint_mulmod" mem [| 0x1C0L; 0x100L; 0x140L; 0x180L |]);
  Alcotest.(check int32) "7*9 mod 5" 3l (mem.Extern.load32 0x1C0l);
  (* larger: (2^32-1)^2 mod (2^32+1)... use (2^32-1) = [ffffffff, 0..];
     m = [1, 1, 0...] (2^32+1); (2^32-1)^2 = 2^64 - 2^33 + 1;
     mod (2^32+1): 2^32 ≡ -1, so 2^64 ≡ 1, 2^33 ≡ -2 -> 1 + 2 + 1 = 4 *)
  mem.Extern.store32 0x100l (-1l);
  write 0x104l 0;
  mem.Extern.store32 0x140l (-1l);
  write 0x144l 0;
  write 0x180l 1;
  write 0x184l 1;
  ignore (Extern.run "bigint_mulmod" mem [| 0x1C0L; 0x100L; 0x140L; 0x180L |]);
  Alcotest.(check int32) "big case" 4l (mem.Extern.load32 0x1C0l)

(* precompile arity table agrees with the emulator's syscall dispatch *)
let test_syscall_ids_roundtrip () =
  List.iter
    (fun (name, _arity) ->
      let id = Zkopt_riscv.Emulator.precompile_syscall_id name in
      let name', _ = Zkopt_riscv.Emulator.precompile_of_syscall id in
      Alcotest.(check string) "roundtrip" name name')
    Extern.signatures

let tests =
  [
    Alcotest.test_case "sha256 'abc' known answer" `Quick test_sha256_abc;
    Alcotest.test_case "keccak-f zero state" `Quick test_keccakf_zero_state;
    Alcotest.test_case "signature scheme" `Quick test_signature_scheme;
    Alcotest.test_case "bigint mulmod" `Quick test_bigint_mulmod;
    Alcotest.test_case "syscall id roundtrip" `Quick test_syscall_ids_roundtrip;
  ]
