(** Analysis tests: dominators, loops, liveness, stats. *)

open Zkopt_ir
open Zkopt_analysis
module B = Builder

let diamond_func () =
  let m = Modul.create () in
  let f =
    B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
        let c = B.icmp b Instr.Eq (B.imm 1) (B.imm 1) in
        let r = B.var b Ty.I32 (B.imm 0) in
        B.if_ b c
          ~then_:(fun () -> B.set b Ty.I32 r (B.imm 1))
          ~else_:(fun () -> B.set b Ty.I32 r (B.imm 2))
          ();
        B.ret b (Some (Value.Reg r)))
  in
  f

let test_dominators () =
  let f = diamond_func () in
  let cfg = Cfg.of_func f in
  let dom = Dom.compute cfg in
  (* entry dominates everything *)
  for i = 0 to Cfg.size cfg - 1 do
    Alcotest.(check bool) "entry dominates" true (Dom.dominates dom 0 i)
  done;
  (* the then-arm does not dominate the join (label numbering is
     process-global, so find blocks by prefix) *)
  let find prefix =
    let found = ref (-1) in
    for i = 0 to Cfg.size cfg - 1 do
      let l = Cfg.label cfg i in
      if String.length l >= String.length prefix
         && String.sub l 0 (String.length prefix) = prefix
      then found := i
    done;
    Alcotest.(check bool) (prefix ^ " exists") true (!found >= 0);
    !found
  in
  let ti = find "if.then" in
  let join = find "if.join" in
  Alcotest.(check bool) "arm !dom join" false (Dom.dominates dom ti join)

let loop_func () =
  let m = Modul.create () in
  B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
      let s = B.var b Ty.I32 (B.imm 0) in
      B.for_ b ~from:(B.imm 2) ~bound:(B.imm 12) (fun i ->
          B.for_ b ~from:(B.imm 0) ~bound:(B.imm 3) (fun j ->
              B.set b Ty.I32 s (B.add b (Value.Reg s) (B.mul b i j))));
      B.ret b (Some (Value.Reg s)))

let test_loops_and_counted () =
  let f = loop_func () in
  let cfg = Cfg.of_func f in
  let loops = Loops.find cfg in
  Alcotest.(check int) "two loops" 2 (List.length loops);
  let depths = List.sort compare (List.map (fun l -> l.Loops.depth) loops) in
  Alcotest.(check (list int)) "nesting" [ 1; 2 ] depths;
  let defs = Defs.compute f in
  let counted = List.filter_map (Loops.as_counted cfg defs) loops in
  Alcotest.(check int) "both counted" 2 (List.length counted);
  ignore
    (List.find (fun c -> c.Loops.loop.Loops.depth = 1) counted)

let test_trip_count_check () =
  let f = loop_func () in
  let cfg = Cfg.of_func f in
  let defs = Defs.compute f in
  let counted =
    List.filter_map (Loops.as_counted cfg defs) (Loops.find cfg)
  in
  let outer = List.find (fun c -> c.Loops.loop.Loops.depth = 1) counted in
  match Loops.trip_count outer ~init:(Some 2L) with
  | Some n -> Alcotest.(check int) "10 trips" 10 n
  | None -> Alcotest.fail "expected a constant trip count"

let test_liveness () =
  let f = diamond_func () in
  let cfg = Cfg.of_func f in
  let live = Liveness.compute cfg in
  let cross = Liveness.cross_block_regs live in
  (* r (the result var) is live across blocks *)
  Alcotest.(check bool) "some cross-block reg" true
    (not (Intset.is_empty cross))

let test_callgraph_recursion () =
  let m = Modul.create () in
  ignore
    (B.define m "f" ~params:[ Ty.I32 ] ~ret:Ty.I32 (fun b ps ->
         let n = List.nth ps 0 in
         let c = B.icmp b Instr.Sle n (B.imm 0) in
         B.if_ b c ~then_:(fun () -> B.ret b (Some (B.imm 0))) ();
         B.ret b (Some (B.callv b "f" [ B.sub b n (B.imm 1) ]))));
  ignore
    (B.define m "g" ~params:[] ~ret:Ty.I32 (fun b _ ->
         B.ret b (Some (B.callv b "f" [ B.imm 3 ]))));
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         B.ret b (Some (B.callv b "g" []))));
  let cg = Callgraph.compute m in
  Alcotest.(check bool) "f recursive" true (Callgraph.is_recursive cg "f");
  Alcotest.(check bool) "g not recursive" false (Callgraph.is_recursive cg "g");
  Alcotest.(check (list string)) "nothing unreachable" []
    (Callgraph.unreachable_funcs m cg)

(* stats *)
let test_stats () =
  let module S = Zkopt_stats.Stats in
  Alcotest.(check (float 1e-9)) "mean" 2.0 (S.mean [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "median even" 2.5 (S.median [ 1.; 2.; 3.; 4. ]);
  Alcotest.(check (float 1e-6)) "pearson perfect" 1.0
    (S.pearson [ 1.; 2.; 3. ] [ 10.; 20.; 30. ]);
  Alcotest.(check (float 1e-6)) "spearman monotone" 1.0
    (S.spearman [ 1.; 2.; 3.; 4. ] [ 1.; 8.; 27.; 64. ]);
  Alcotest.(check (float 1e-6)) "improvement" 50.0
    (S.improvement_pct ~base:2.0 1.0);
  let g, l = S.gain_loss_counts [ 5.0; -3.0; 1.0; 2.5 ] in
  Alcotest.(check (pair int int)) "buckets" (2, 1) (g, l)

let test_autotune_subseq () =
  let module A = Zkopt_autotune.Autotune in
  let seqs = [ [ "a"; "b"; "c" ]; [ "b"; "a" ]; [ "c" ] ] in
  Alcotest.(check int) "containing" 2 (A.count_containing "b" seqs);
  Alcotest.(check int) "ordered ab" 1 (A.count_ordered_pair "a" "b" seqs);
  Alcotest.(check int) "ordered ba" 1 (A.count_ordered_pair "b" "a" seqs)

let tests =
  [
    Alcotest.test_case "dominators" `Quick test_dominators;
    Alcotest.test_case "loops + counted" `Quick test_loops_and_counted;
    Alcotest.test_case "trip count" `Quick test_trip_count_check;
    Alcotest.test_case "liveness" `Quick test_liveness;
    Alcotest.test_case "callgraph recursion" `Quick test_callgraph_recursion;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "autotune subsequences" `Quick test_autotune_subseq;
  ]
