test/test_riscv.ml: Alcotest Asm Builder Codegen Emulator Eval Hashtbl Instr Int64 Interp Isa List Modul Ty Value Verify Zkopt_ir Zkopt_riscv
