test/test_zkvm.ml: Alcotest Builder Instr Int32 Measure Modul Profile Ty Value Zkopt_core Zkopt_cpu Zkopt_ir Zkopt_workloads Zkopt_zkvm
