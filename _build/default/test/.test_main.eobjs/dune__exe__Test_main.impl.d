test/test_main.ml: Alcotest Test_analysis Test_crypto Test_infra Test_ir Test_passes Test_riscv Test_workloads Test_zkvm
