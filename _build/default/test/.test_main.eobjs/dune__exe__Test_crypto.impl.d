test/test_crypto.ml: Alcotest Array Extern Hashtbl Int32 Int64 List Option Printf Zkopt_ir Zkopt_riscv
