test/test_analysis.ml: Alcotest Builder Callgraph Cfg Defs Dom Instr Intset List Liveness Loops Modul String Ty Value Zkopt_analysis Zkopt_autotune Zkopt_ir Zkopt_stats
