test/test_ir.ml: Alcotest Astring_contains Block Builder Eval Func Instr Int64 Interp List Memory Modul Printer Ty Value Verify Zkopt_ir
