dev/passfuzz.mli:
