dev/passfuzz.ml: Array Clone Eval Int64 Interp List Printexc Printf Random Randprog String Sys Verify Zkopt_ir Zkopt_passes Zkopt_riscv Zkopt_runtime
