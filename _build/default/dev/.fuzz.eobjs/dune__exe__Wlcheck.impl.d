dev/wlcheck.ml: Array Eval Int64 Interp List Printexc Printf Sys Unix Verify Zkopt_ir Zkopt_riscv Zkopt_runtime Zkopt_workloads
