dev/fuzz.ml: Eval Int64 Interp Printexc Printf Randprog Verify Zkopt_ir Zkopt_riscv Zkopt_runtime
