dev/fuzz.mli:
