dev/wlcheck.mli:
