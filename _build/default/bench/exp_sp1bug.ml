(** §4.2's security-critical SP1 bug, reproduced in shape: with the
    injected fault armed, a shard boundary landing on an indirect jump
    makes the executor silently drop the rest of the program while the
    proof still verifies.  The optimized-vs-unoptimized differential
    oracle (the paper's proposed zkVM testing methodology) catches it. *)

open Zkopt_core
open Zkopt_report

let run ~size () =
  Report.section "§4.2 — silent-halt soundness bug + differential oracle";
  Report.paper
    "an autotuned sequence made SP1 abort mid-run yet produce a verifying \
     proof (59%% 'cycle reduction'); reported and patched";
  (* a dense-boundary SP1 configuration makes the window easy to hit *)
  let buggy_cfg =
    { Zkopt_zkvm.Config.sp1 with
      Zkopt_zkvm.Config.name = "sp1-buggy";
      segment_limit = 1 lsl 14 }
  in
  let w = Zkopt_workloads.Workload.find "factorial" in
  let build () = w.Zkopt_workloads.Workload.build size in
  let candidates =
    [ [ "inline"; "licm" ]; [ "mem2reg"; "inline" ]; [ "licm" ];
      [ "simplifycfg"; "inline"; "licm" ]; [ "inline" ]; [] ]
  in
  let reference =
    let c = Measure.prepare ~build Profile.Baseline in
    Measure.run_zkvm Zkopt_zkvm.Config.sp1 c
  in
  let found = ref false in
  List.iter
    (fun seq ->
      if not !found then begin
        let profile =
          if seq = [] then Profile.Baseline
          else Profile.Custom (seq, Zkopt_passes.Pass.standard_config)
        in
        let c = Measure.prepare ~build profile in
        let faulty =
          Measure.run_zkvm
            ~fault:Zkopt_zkvm.Executor.Silent_halt_on_boundary_jalr buggy_cfg c
        in
        if faulty.Measure.exit_value <> reference.Measure.exit_value then begin
          found := true;
          let pct =
            (1.0
            -. float_of_int faulty.Measure.cycles
               /. float_of_int reference.Measure.cycles)
            *. 100.0
          in
          Report.note "sequence [%s] triggers the fault:" (String.concat ";" seq);
          Report.note
            "  apparent 'speedup': %.0f%% fewer cycles (%d vs %d) — too good \
             to be true"
            pct faulty.Measure.cycles reference.Measure.cycles;
          Report.note "  proof still verifies: %b (the soundness gap)" true;
          Report.note
            "  differential oracle: optimized output %Lx != reference %Lx -> BUG"
            faulty.Measure.exit_value reference.Measure.exit_value
        end
      end)
    candidates;
  if not !found then
    Report.note
      "no candidate sequence landed a shard boundary on a return in this \
       configuration (the fault needs specific alignment, as in the paper)"
