(** Bechamel micro-benchmarks of the simulator itself: compilation,
    emulation, zkVM accounting, CPU timing model, and the prover model.
    (The paper-shaped experiments live in the other modules; this block
    measures the infrastructure's own throughput.) *)

open Bechamel
open Toolkit

let quick_module () =
  (Zkopt_workloads.Workload.find "fibonacci").Zkopt_workloads.Workload.build
    Zkopt_workloads.Workload.Quick

let prepared =
  lazy
    (let build () =
       let m = quick_module () in
       Zkopt_runtime.Runtime.link m;
       m
     in
     Zkopt_core.Measure.prepare ~build Zkopt_core.Profile.Baseline)

let tests () =
  [
    Test.make ~name:"build-ir" (Staged.stage (fun () -> ignore (quick_module ())));
    Test.make ~name:"o3-pipeline"
      (Staged.stage (fun () ->
           let m = quick_module () in
           Zkopt_runtime.Runtime.link m;
           Zkopt_passes.Catalog.run_level Zkopt_passes.Catalog.O3 m));
    Test.make ~name:"codegen"
      (Staged.stage (fun () ->
           let m = quick_module () in
           Zkopt_runtime.Runtime.link m;
           ignore (Zkopt_riscv.Codegen.compile m)));
    Test.make ~name:"zkvm-execute"
      (Staged.stage (fun () ->
           let c = Lazy.force prepared in
           ignore
             (Zkopt_core.Measure.run_zkvm Zkopt_zkvm.Config.risc0 c)));
    Test.make ~name:"cpu-model"
      (Staged.stage (fun () ->
           let c = Lazy.force prepared in
           ignore (Zkopt_core.Measure.run_cpu c)));
  ]

let run () =
  Zkopt_report.Report.section "Simulator micro-benchmarks (bechamel)";
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.4) ~kde:None () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name raw ->
          let stats =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              Instance.monotonic_clock raw
          in
          match Analyze.OLS.estimates stats with
          | Some [ est ] ->
            Zkopt_report.Report.note "%-40s %12.0f ns/run" name est
          | _ -> ())
        results)
    (tests ())
