(** The shared measurement sweep: 58 programs x 71 profiles x 2 zkVMs,
    plus the CPU model for the baseline and single-pass profiles (RQ3).
    Results are computed once and shared by every RQ1/RQ2/RQ3 block. *)

open Zkopt_core

type point = {
  program : string;
  suite : string;
  profile : string;
  r0 : Measure.zk_metrics;
  sp1 : Measure.zk_metrics;
  cpu : Measure.cpu_metrics option;
}

type t = {
  points : (string * string, point) Hashtbl.t; (* (program, profile) *)
  programs : Zkopt_workloads.Workload.t list;
  size : Zkopt_workloads.Workload.size;
}

let profile_names = List.map Profile.name Profile.all_71

let measure_one ~size ~with_cpu (w : Zkopt_workloads.Workload.t) profile =
  let build () = w.Zkopt_workloads.Workload.build size in
  let c = Measure.prepare ~build profile in
  let r0 = Measure.run_zkvm Zkopt_zkvm.Config.risc0 c in
  let sp1 = Measure.run_zkvm Zkopt_zkvm.Config.sp1 c in
  let cpu = if with_cpu then Some (Measure.run_cpu c) else None in
  {
    program = w.Zkopt_workloads.Workload.name;
    suite = w.Zkopt_workloads.Workload.suite;
    profile = Profile.name profile;
    r0;
    sp1;
    cpu;
  }

let run ?(progress = true) ~size () : t =
  let programs = Zkopt_workloads.Suite.all () in
  let points = Hashtbl.create 4096 in
  let total = List.length programs * List.length Profile.all_71 in
  let done_ = ref 0 in
  List.iter
    (fun w ->
      List.iter
        (fun profile ->
          let with_cpu =
            match profile with
            | Profile.Baseline | Profile.Single_pass _ -> true
            | _ -> false
          in
          let p = measure_one ~size ~with_cpu w profile in
          (* cross-check: optimized binaries must preserve the checksum *)
          let base_key = (p.program, "baseline") in
          (match Hashtbl.find_opt points base_key with
          | Some base
            when not
                   (Int64.equal base.r0.Measure.exit_value
                      p.r0.Measure.exit_value) ->
            failwith
              (Printf.sprintf "MISCOMPILE: %s under %s changed its checksum"
                 p.program p.profile)
          | _ -> ());
          Hashtbl.replace points (p.program, p.profile) p;
          incr done_;
          if progress && !done_ mod 200 = 0 then
            Printf.eprintf "  sweep: %d/%d\n%!" !done_ total)
        Profile.all_71)
    programs;
  { points; programs; size }

let get t program profile = Hashtbl.find t.points (program, profile)

type metric = Cycles | Exec | Prove

let value vm metric (p : point) =
  let zk = match vm with `R0 -> p.r0 | `Sp1 -> p.sp1 in
  match metric with
  | Cycles -> float_of_int zk.Measure.cycles
  | Exec -> zk.Measure.exec_time_s
  | Prove -> zk.Measure.prove_time_s

(** Improvement (%) of [profile] over the baseline for one program. *)
let improvement t ~program ~profile ~vm ~metric =
  let base = value vm metric (get t program "baseline") in
  let v = value vm metric (get t program profile) in
  Zkopt_stats.Stats.improvement_pct ~base v

(** CPU-model improvement (%) over baseline (RQ3). *)
let cpu_improvement t ~program ~profile =
  match ((get t program "baseline").cpu, (get t program profile).cpu) with
  | Some base, Some v ->
    Some
      (Zkopt_stats.Stats.improvement_pct ~base:base.Measure.cpu_time_s
         v.Measure.cpu_time_s)
  | _ -> None

let all_programs t = List.map (fun w -> w.Zkopt_workloads.Workload.name) t.programs
