(** RQ1 artifacts: Fig. 3 (top-25 pass impact), Table 1 (gain/loss
    counts), Fig. 4 (severity buckets), and the cycle/time correlation. *)

open Zkopt_report
open Zkopt_stats
module Catalog = Zkopt_passes.Catalog

let avg_impact sweep pass =
  (* average improvement across programs, vms and the three metrics,
     mirroring Fig. 3's aggregation *)
  let programs = Sweep.all_programs sweep in
  let vals =
    List.concat_map
      (fun p ->
        List.concat_map
          (fun vm ->
            List.map
              (fun metric ->
                Sweep.improvement sweep ~program:p ~profile:pass ~vm ~metric)
              [ Sweep.Cycles; Exec; Prove ])
          [ `R0; `Sp1 ])
      programs
  in
  (Stats.mean vals, Stats.stddev vals)

let fig3 sweep =
  Report.section "Fig. 3 — top-25 individual LLVM passes, average impact";
  Report.paper
    "inline +28.4%%/+19.3%% exec (R0/SP1); licm -11.8%%/-7.1%% exec; most \
     others small";
  let impacts =
    List.map (fun p -> (p, avg_impact sweep p)) Catalog.swept_passes
    |> List.sort (fun (_, (a, _)) (_, (b, _)) ->
           compare (Float.abs b) (Float.abs a))
  in
  let top25 = List.filteri (fun i _ -> i < 25) impacts in
  let rows =
    List.map
      (fun (pass, (avg, std)) ->
        [ pass; Report.pct avg; "±" ^ Report.f1 std; Report.bar ~scale:1.0 avg ])
      top25
  in
  Report.table ~headers:[ "pass"; "avg impact"; "std"; "" ] rows;
  let omitted = List.length impacts - 25 in
  Report.note "%d further passes with smaller average impact omitted (paper: 39 minimal)"
    omitted;
  (* detailed exec-time impact for the headline passes *)
  Report.note "";
  Report.note "headline passes, zkVM execution-time improvement:";
  let detail pass =
    let per vm =
      Stats.mean
        (List.map
           (fun p ->
             Sweep.improvement sweep ~program:p ~profile:pass ~vm
               ~metric:Sweep.Exec)
           (Sweep.all_programs sweep))
    in
    Report.note "  %-18s RISC Zero %s   SP1 %s" pass
      (Report.pct (per `R0))
      (Report.pct (per `Sp1))
  in
  List.iter detail [ "inline"; "always-inline"; "licm"; "mem2reg"; "simplifycfg" ]

let tab1 sweep =
  Report.section "Table 1 — gain/loss instance counts (>2%% / <-2%%)";
  Report.paper
    "RISC Zero: exec 370 gain / 437 loss, prove 302/241; SP1: exec 314/124, \
     prove 347/174";
  let count vm metric =
    let pcts =
      List.concat_map
        (fun pass ->
          List.map
            (fun p -> Sweep.improvement sweep ~program:p ~profile:pass ~vm ~metric)
            (Sweep.all_programs sweep))
        Zkopt_passes.Catalog.swept_passes
    in
    Stats.gain_loss_counts pcts
  in
  let rows =
    List.map
      (fun (label, vm) ->
        let eg, el = count vm Sweep.Exec in
        let pg, pl = count vm Sweep.Prove in
        [ label; Report.int_s eg; Report.int_s el; Report.int_s pg;
          Report.int_s pl ])
      [ ("RISC Zero", `R0); ("SP1", `Sp1) ]
  in
  Report.table
    ~headers:[ "zkVM"; "exec gain"; "exec loss"; "prove gain"; "prove loss" ]
    rows

let fig4 sweep =
  Report.section "Fig. 4 — severity buckets per pass (zkVM execution)";
  Report.paper
    "inline mostly gains; loop passes (licm, loop-extract, loop-deletion) \
     mostly losses on RISC Zero; instcombine balanced";
  let interesting =
    [ "inline"; "licm"; "loop-extract"; "loop-deletion"; "loop-unroll";
      "instcombine"; "simplifycfg"; "mem2reg"; "reg2mem"; "sroa";
      "strength-reduction"; "gvn"; "jump-threading"; "sccp" ]
  in
  let rows =
    List.concat_map
      (fun pass ->
        List.map
          (fun (label, vm) ->
            let pcts =
              List.map
                (fun p ->
                  Sweep.improvement sweep ~program:p ~profile:pass ~vm
                    ~metric:Sweep.Exec)
                (Sweep.all_programs sweep)
            in
            let sl, ml, n, mg, sg = Stats.count_buckets pcts in
            [ pass ^ " (" ^ label ^ ")"; Report.int_s sl; Report.int_s ml;
              Report.int_s n; Report.int_s mg; Report.int_s sg ])
          [ ("R0", `R0); ("SP1", `Sp1) ])
      interesting
  in
  Report.table
    ~headers:[ "pass"; "<=-5%"; "-5..-2%"; "~"; "2..5%"; ">=5%" ]
    rows

let correlation sweep =
  Report.section "§4.1 — cycle count vs execution vs proving correlation";
  Report.paper "Pearson and Spearman all above 0.98 on both zkVMs";
  List.iter
    (fun (label, vm) ->
      let points =
        List.concat_map
          (fun pass ->
            List.map
              (fun p ->
                let pt = Sweep.get sweep p pass in
                ( Sweep.value vm Sweep.Cycles pt,
                  Sweep.value vm Sweep.Exec pt,
                  Sweep.value vm Sweep.Prove pt ))
              (Sweep.all_programs sweep))
          ("baseline" :: Zkopt_passes.Catalog.swept_passes)
      in
      let cycles = List.map (fun (c, _, _) -> c) points in
      let execs = List.map (fun (_, e, _) -> e) points in
      let proves = List.map (fun (_, _, p) -> p) points in
      Report.note
        "%-9s cycles~exec: pearson %.4f spearman %.4f | cycles~prove: %.4f / %.4f | exec~prove: %.4f"
        label
        (Stats.pearson cycles execs)
        (Stats.spearman cycles execs)
        (Stats.pearson cycles proves)
        (Stats.spearman cycles proves)
        (Stats.pearson execs proves))
    [ ("RISC Zero", `R0); ("SP1", `Sp1) ]

let run sweep =
  fig3 sweep;
  tab1 sweep;
  fig4 sweep;
  correlation sweep
