(** The paper's case studies: the two motivating examples (Fig. 2), the
    licm paging study (Fig. 9), the inline-spill regression (Fig. 10),
    loop unrolling at IR and hand-written assembly level (Fig. 11 /
    Table 2), the simplifycfg abs() divergence (Fig. 12), and the
    inline-threshold experiment (§5). *)

open Zkopt_ir
open Zkopt_core
open Zkopt_report
module B = Builder
module Stats = Zkopt_stats.Stats

let measure_both ~build profile =
  let c = Measure.prepare ~build profile in
  let r0 = Measure.run_zkvm Zkopt_zkvm.Config.risc0 c in
  let sp1 = Measure.run_zkvm Zkopt_zkvm.Config.sp1 c in
  let cpu = Measure.run_cpu c in
  (r0, sp1, cpu)

let speedup base v = Stats.improvement_pct ~base v

let compare_profiles ~build ~label ~base_profile ~opt_profile =
  let b0, b1, bc = measure_both ~build base_profile in
  let o0, o1, oc = measure_both ~build opt_profile in
  Report.note
    "%-22s R0 exec %s prove %s | SP1 exec %s prove %s | CPU %s" label
    (Report.pct (speedup b0.Measure.exec_time_s o0.Measure.exec_time_s))
    (Report.pct (speedup b0.Measure.prove_time_s o0.Measure.prove_time_s))
    (Report.pct (speedup b1.Measure.exec_time_s o1.Measure.exec_time_s))
    (Report.pct (speedup b1.Measure.prove_time_s o1.Measure.prove_time_s))
    (Report.pct (speedup bc.Measure.cpu_time_s oc.Measure.cpu_time_s));
  ((b0, b1, bc), (o0, o1, oc))

(* ------------------------------------------------------------------ *)
(* Fig. 2a — strength reduction                                        *)
(* ------------------------------------------------------------------ *)

let div_loop_program n () =
  let m = Modul.create () in
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         let s = B.var b Ty.I32 (B.imm 0) in
         let x = B.var b Ty.I32 (B.imm 123456789) in
         B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun _ ->
             B.set b Ty.I32 x
               (B.add b (B.mul b (Value.Reg x) (B.imm 1103515245)) (B.imm 12345));
             let q = B.udiv b (Value.Reg x) (B.imm 52) in
             let r = B.urem b (Value.Reg x) (B.imm 13) in
             B.set b Ty.I32 s (B.add b (Value.Reg s) (B.add b q r)));
         B.ret b (Some (Value.Reg s))));
  m

let fig2a () =
  Report.section "Fig. 2a — strength reduction (division -> shift/magic)";
  Report.paper "x86 3.5x faster after the rewrite; RISC Zero proving 40%% slower";
  ignore
    (compare_profiles ~build:(div_loop_program 60_000)
       ~label:"strength-reduction"
       ~base_profile:Profile.Baseline
       ~opt_profile:(Profile.Single_pass "strength-reduction"))

(* ------------------------------------------------------------------ *)
(* Fig. 2b — loop fission                                              *)
(* ------------------------------------------------------------------ *)

let fission_program n () =
  let m = Modul.create () in
  ignore (B.global_zero m "fa" (4 * n));
  ignore (B.global_zero m "fb" (4 * n));
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         let fa = Value.Glob "fa" and fb = Value.Glob "fb" in
         B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
             let a = B.mul b i (B.imm 3) in
             B.store b ~addr:(B.addr b fa ~index:i) a;
             let c = B.xor b i (B.imm 0x5A5A) in
             B.store b ~addr:(B.addr b fb ~index:i) c);
         let s1 = B.load b (B.addr b fa ~index:(B.imm (n - 1))) in
         let s2 = B.load b (B.addr b fb ~index:(B.imm (n - 1))) in
         B.ret b (Some (B.xor b s1 s2))));
  m

let fig2b () =
  Report.section "Fig. 2b — loop fission (N reduced from the paper's 1048576)";
  Report.paper "x86 ~8%% faster after fission; SP1 proving ~5%% slower";
  ignore
    (compare_profiles ~build:(fission_program 49_152) ~label:"loop-fission"
       ~base_profile:Profile.Baseline
       ~opt_profile:(Profile.Single_pass "loop-fission"))

(* ------------------------------------------------------------------ *)
(* Fig. 9 — licm paging pressure                                       *)
(* ------------------------------------------------------------------ *)

(* loop nests of the given depth storing through many distinct arrays so
   hoisted address computations outgrow the register file *)
let licm_program ~depth ~arrays ~n () =
  let m = Modul.create () in
  for k = 0 to arrays - 1 do
    ignore (B.global_zero m (Printf.sprintf "g%d" k) (4 * (n + 8)))
  done;
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         (* the innermost loop reads/writes [arrays] addresses that depend
            only on the *outer* induction variable: licm hoists all of the
            address computations, creating [arrays] simultaneously-live
            pointers across the inner loop *)
         let rec go d outer_iv =
           if d = 0 then begin
             let iv = Option.get outer_iv in
             B.for_ b ~from:(B.imm 0) ~bound:(B.imm 8) (fun j ->
                 for k = 0 to arrays - 1 do
                   let base = Value.Glob (Printf.sprintf "g%d" k) in
                   let addr =
                     B.addr b base ~index:iv ~scale:4 ~offset:(4 * (k mod 7))
                   in
                   let v = B.load b addr in
                   B.store b ~addr (B.add b v j)
                 done)
           end
           else
             B.for_ b ~from:(B.imm 0)
               ~bound:(B.imm (if d = depth then n else 3))
               (fun iv -> go (d - 1) (Some iv))
         in
         go depth None;
         let v = B.load b (B.addr b (Value.Glob "g0") ~index:(B.imm 1)) in
         B.ret b (Some v)));
  m

let fig9 () =
  Report.section "Fig. 9 — licm turns loop work into paging pressure";
  Report.paper
    "npb-lu: licm +444%% paging cycles on R0, +69%% on SP1; depth-4 nests \
     2.6x cycles vs 1.3x at depth 2; prove 2.7x slower (R0)";
  let study label ~depth ~arrays ~n =
    let build = licm_program ~depth ~arrays ~n in
    let base = Measure.prepare ~build Profile.Baseline in
    let licm =
      Measure.prepare ~build
        (Profile.Custom ([ "licm" ], Zkopt_passes.Pass.standard_config))
    in
    let b0 = Measure.run_zkvm Zkopt_zkvm.Config.risc0 base in
    let l0 = Measure.run_zkvm Zkopt_zkvm.Config.risc0 licm in
    let b1 = Measure.run_zkvm Zkopt_zkvm.Config.sp1 base in
    let l1 = Measure.run_zkvm Zkopt_zkvm.Config.sp1 licm in
    let pag m = float_of_int m.Measure.paging_cycles in
    let pct_more a bb = (bb /. Float.max 1.0 a -. 1.0) *. 100.0 in
    Report.note
      "%-18s R0 paging %+.0f%%  cycles x%.2f | SP1 paging %+.0f%%  cycles x%.2f"
      label
      (pct_more (pag b0) (pag l0))
      (float_of_int l0.Measure.cycles /. float_of_int b0.Measure.cycles)
      (pct_more (pag b1) (pag l1))
      (float_of_int l1.Measure.cycles /. float_of_int b1.Measure.cycles);
    Report.note "%-18s R0 spill traffic: baseline %d lw/sw, licm %d lw/sw"
      "" (b0.Measure.loads + b0.Measure.stores)
      (l0.Measure.loads + l0.Measure.stores)
  in
  study "depth 1 (fig 9a)" ~depth:1 ~arrays:24 ~n:300;
  study "depth 2" ~depth:2 ~arrays:24 ~n:100;
  study "depth 4 (fig 9b)" ~depth:4 ~arrays:24 ~n:40

(* ------------------------------------------------------------------ *)
(* Fig. 10 — inline-driven u64 spills                                  *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  Report.section "Fig. 10 — inlining the u64 work() loop (tailcall program)";
  Report.paper
    "inlining: 0.8x exec / 0.45x prove speedup (i.e. slower); lw/sw \
     roughly doubles from register-pair spills";
  let w = Zkopt_workloads.Workload.find "tailcall" in
  let build () = w.Zkopt_workloads.Workload.build Zkopt_workloads.Workload.Full in
  let cfg = { Zkopt_passes.Pass.standard_config with inline_threshold = 5000 } in
  let base = Measure.prepare ~build Profile.Baseline in
  let inl = Measure.prepare ~build (Profile.Custom ([ "inline" ], cfg)) in
  let report label c =
    let r0 = Measure.run_zkvm Zkopt_zkvm.Config.risc0 c in
    Report.note "%-10s R0 cycles %9d  lw+sw %8d  prove %ss" label
      r0.Measure.cycles
      (r0.Measure.loads + r0.Measure.stores)
      (Report.f2 r0.Measure.prove_time_s);
    r0
  in
  let b0 = report "baseline" base in
  let i0 = report "inlined" inl in
  Report.note "exec speedup: %.2fx   memory-op ratio: %.2fx"
    (float_of_int b0.Measure.cycles /. float_of_int i0.Measure.cycles)
    (float_of_int (i0.Measure.loads + i0.Measure.stores)
    /. float_of_int (max 1 (b0.Measure.loads + b0.Measure.stores)))

(* ------------------------------------------------------------------ *)
(* Fig. 11 / Table 2 — loop unrolling, IR pass and manual assembly     *)
(* ------------------------------------------------------------------ *)

let matvec_program () =
  let m = Modul.create () in
  ignore (B.global_zero m "mat" (4 * 25));
  ignore (B.global_zero m "vec" (4 * 5));
  ignore (B.global_zero m "res" (4 * 5));
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         let mat = Value.Glob "mat" and vec = Value.Glob "vec" in
         let res = Value.Glob "res" in
         B.for_ b ~from:(B.imm 0) ~bound:(B.imm 25) (fun i ->
             B.store b ~addr:(B.addr b mat ~index:i) (B.add b i (B.imm 1)));
         B.for_ b ~from:(B.imm 0) ~bound:(B.imm 5) (fun i ->
             B.store b ~addr:(B.addr b vec ~index:i) (B.add b i (B.imm 2)));
         B.for_ b ~from:(B.imm 0) ~bound:(B.imm 800) (fun _rep ->
             B.for_ b ~from:(B.imm 0) ~bound:(B.imm 5) (fun col ->
                 B.for_ b ~from:(B.imm 0) ~bound:(B.imm 5) (fun row ->
                     let mv =
                       B.load b
                         (B.addr b mat
                            ~index:(B.add b (B.mul b col (B.imm 5)) row))
                     in
                     let vv = B.load b (B.addr b vec ~index:col) in
                     let cur = B.load b (B.addr b res ~index:row) in
                     B.store b ~addr:(B.addr b res ~index:row)
                       (B.add b cur (B.mul b mv vv)))));
         let v = B.load b (B.addr b res ~index:(B.imm 3)) in
         B.ret b (Some v)));
  m

let fig11 () =
  Report.section "Fig. 11 — loop-unroll on the 5x5 matvec (pass level)";
  Report.paper "x86 ~+9%%; both zkVMs slow down 3-10%% (exec and prove)";
  ignore
    (compare_profiles ~build:matvec_program ~label:"loop-unroll"
       ~base_profile:Profile.Baseline
       ~opt_profile:(Profile.Single_pass "loop-unroll"))

(* hand-written RV32 assembly: sum a 4096-word array, unrolled 1x/4x/16x *)
let manual_sum_unit factor : Zkopt_riscv.Asm.unit_ =
  let open Zkopt_riscv in
  let a0 = 10 and a1 = 11 and a2 = 12 and t0 = 5 in
  let body k = Asm.Ins (Isa.Load (Isa.LW, t0, a1, 4 * k))
  and acc = Asm.Ins (Isa.Op (Isa.ADD, a0, a0, t0)) in
  let unrolled =
    List.concat (List.init factor (fun k -> [ body k; acc ]))
  in
  let a3 = 13 in
  {
    Asm.name = "main";
    items =
      [ Asm.Li (a0, 0l);                      (* acc *)
        Asm.Li (a3, 64l);                     (* outer repetitions *)
        Asm.Label "outer";
        Asm.La (a1, "data");                  (* cursor *)
        Asm.Li (a2, Int32.of_int (4096 / factor)); (* remaining groups *)
        Asm.Label "loop" ]
      @ unrolled
      @ [ Asm.Ins (Isa.Opi (Isa.ADDI, a1, a1, 4 * factor));
          Asm.Ins (Isa.Opi (Isa.ADDI, a2, a2, -1));
          Asm.Bc (Isa.BNE, a2, 0, "loop");
          Asm.Ins (Isa.Opi (Isa.ADDI, a3, a3, -1));
          Asm.Bc (Isa.BNE, a3, 0, "outer");
          (* halt with the sum *)
          Asm.Li (17, 0l); Asm.Ins Isa.Ecall ];
  }

let tab2 () =
  Report.section "Table 2 — manual assembly unrolling (4x, 16x) speedups";
  Report.paper
    "4x: x86 +28.1%%, SP1 prove +24.3%%, R0 prove +51.4%%; 16x: x86 +31.5%%, \
     R0 exec +52.7%%";
  let open Zkopt_riscv in
  let modul = Modul.create () in
  Modul.add_global modul
    { Modul.gname = "data";
      init = Modul.Words (Array.init 4096 (fun i -> Int32.of_int (i * 7))) };
  let run factor =
    let globals, data_end = Layout.place_globals modul in
    let prog = Asm.assemble ~globals ~data_end [ manual_sum_unit factor ] in
    let cg = { Codegen.program = prog; stats = [] } in
    let r0 = Zkopt_zkvm.Vm.measure Zkopt_zkvm.Config.risc0 cg modul in
    let s1 = Zkopt_zkvm.Vm.measure Zkopt_zkvm.Config.sp1 cg modul in
    let cpu = Zkopt_cpu.Timing.run cg modul in
    (r0, s1, cpu)
  in
  let b0, b1, bc = run 1 in
  let rows =
    List.map
      (fun factor ->
        let r0, s1, cpu = run factor in
        [ string_of_int factor ^ "x";
          Report.pct (speedup bc.Zkopt_cpu.Timing.time_s cpu.Zkopt_cpu.Timing.time_s);
          Report.pct (speedup b1.Zkopt_zkvm.Vm.prove_time_s s1.Zkopt_zkvm.Vm.prove_time_s);
          Report.pct (speedup b1.Zkopt_zkvm.Vm.exec_time_s s1.Zkopt_zkvm.Vm.exec_time_s);
          Report.pct (speedup b0.Zkopt_zkvm.Vm.prove_time_s r0.Zkopt_zkvm.Vm.prove_time_s);
          Report.pct (speedup b0.Zkopt_zkvm.Vm.exec_time_s r0.Zkopt_zkvm.Vm.exec_time_s) ])
      [ 4; 16 ]
  in
  Report.table
    ~headers:[ "factor"; "x86"; "SP1 prove"; "SP1 exec"; "R0 prove"; "R0 exec" ]
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 12 — branchy abs vs simplifycfg's select                       *)
(* ------------------------------------------------------------------ *)

let abs_program n () =
  let m = Modul.create () in
  ignore (B.global_zero m "data" (4 * 1024));
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         let data = Value.Glob "data" in
         (* random signs defeat the branch predictor *)
         let x = B.var b Ty.I32 (B.imm 88172645) in
         B.for_ b ~from:(B.imm 0) ~bound:(B.imm 1024) (fun i ->
             B.set b Ty.I32 x
               (B.add b (B.mul b (Value.Reg x) (B.imm 1103515245)) (B.imm 12345));
             B.store b ~addr:(B.addr b data ~index:i) (Value.Reg x));
         let s = B.var b Ty.I32 (B.imm 0) in
         B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
             let idx = B.and_ b i (B.imm 1023) in
             let v = B.load b (B.addr b data ~index:idx) in
             let r = B.var b Ty.I32 v in
             let neg = B.icmp b Instr.Slt v (B.imm 0) in
             B.if_ b neg
               ~then_:(fun () -> B.set b Ty.I32 r (B.sub b (B.imm 0) v))
               ();
             B.set b Ty.I32 s (B.add b (Value.Reg s) (Value.Reg r)));
         B.ret b (Some (Value.Reg s))));
  m

let fig12 () =
  Report.section "Fig. 12 — simplifycfg converts the abs() branch to a select";
  Report.paper
    "x86 2.2x faster (no mispredicts); R0 cycles +17.7%%, SP1 +7.6%%; prove \
     regresses similarly";
  let ((b0, b1, _), (o0, o1, _)) =
    compare_profiles ~build:(abs_program 40_000) ~label:"simplifycfg"
      ~base_profile:Profile.Baseline
      ~opt_profile:(Profile.Single_pass "simplifycfg")
  in
  Report.note "cycle-count change: R0 %+.1f%%, SP1 %+.1f%%"
    ((float_of_int o0.Measure.cycles /. float_of_int b0.Measure.cycles -. 1.) *. 100.)
    ((float_of_int o1.Measure.cycles /. float_of_int b1.Measure.cycles -. 1.) *. 100.)

(* ------------------------------------------------------------------ *)
(* §5 — raising the inline threshold to the autotuned 4328             *)
(* ------------------------------------------------------------------ *)

let inline_threshold ~size () =
  Report.section "§5 — -O3 with inline-threshold 4328 (vs default)";
  Report.paper
    "avg exec +6%% on R0 / +1%% on SP1; npb-bt +44%% (R0); x86 average -1%%";
  let progs = Zkopt_workloads.Workload.by_suite "npb" in
  let cfg_hi =
    { (Zkopt_passes.Catalog.level_config Zkopt_passes.Catalog.O3) with
      inline_threshold = 4328 }
  in
  let deltas =
    List.map
      (fun (w : Zkopt_workloads.Workload.t) ->
        let build () = w.Zkopt_workloads.Workload.build size in
        let o3 = Measure.prepare ~build (Profile.Level Zkopt_passes.Catalog.O3) in
        let hi =
          Measure.prepare ~build
            (Profile.Custom (Zkopt_passes.Catalog.pipeline Zkopt_passes.Catalog.O3, cfg_hi))
        in
        let b0 = Measure.run_zkvm Zkopt_zkvm.Config.risc0 o3 in
        let h0 = Measure.run_zkvm Zkopt_zkvm.Config.risc0 hi in
        let d = speedup b0.Measure.exec_time_s h0.Measure.exec_time_s in
        Report.note "  %-10s R0 exec %s" w.Zkopt_workloads.Workload.name (Report.pct d);
        d)
      progs
  in
  Report.note "NPB average (R0 exec): %s" (Report.pct (Stats.mean deltas))

let run ~size () =
  fig2a ();
  fig2b ();
  fig9 ();
  fig10 ();
  fig11 ();
  tab2 ();
  fig12 ();
  inline_threshold ~size ()
