bench/exp_rq2.ml: Hashtbl List Printf Report Stats Sweep Zkopt_autotune Zkopt_core Zkopt_passes Zkopt_report Zkopt_stats Zkopt_workloads Zkopt_zkvm
