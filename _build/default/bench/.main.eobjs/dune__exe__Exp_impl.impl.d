bench/exp_impl.ml: Float List Measure Printf Profile Report String Sweep Zkopt_core Zkopt_report Zkopt_stats Zkopt_workloads Zkopt_zkvm
