bench/exp_sp1bug.ml: List Measure Profile Report String Zkopt_core Zkopt_passes Zkopt_report Zkopt_workloads Zkopt_zkvm
