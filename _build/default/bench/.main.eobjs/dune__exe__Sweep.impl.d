bench/sweep.ml: Hashtbl Int64 List Measure Printf Profile Zkopt_core Zkopt_stats Zkopt_workloads Zkopt_zkvm
