bench/micro.ml: Analyze Bechamel Benchmark Hashtbl Instance Lazy List Measure Staged Test Time Toolkit Zkopt_core Zkopt_passes Zkopt_report Zkopt_riscv Zkopt_runtime Zkopt_workloads Zkopt_zkvm
