bench/main.ml: Array Exp_cases Exp_impl Exp_rq1 Exp_rq2 Exp_rq3 Exp_sp1bug List Micro Option Printf String Sweep Sys Unix Zkopt_workloads
