bench/exp_rq1.ml: Float List Report Stats Sweep Zkopt_passes Zkopt_report Zkopt_stats
