bench/main.mli:
