(** RQ3 artifacts: Fig. 7 (average pass impact, zkVM vs x86-class CPU)
    and Fig. 8 (divergence counts vs RISC Zero). *)

open Zkopt_report
open Zkopt_stats
module Catalog = Zkopt_passes.Catalog

let zk_avg sweep pass vm =
  Stats.mean
    (List.map
       (fun p -> Sweep.improvement sweep ~program:p ~profile:pass ~vm ~metric:Sweep.Exec)
       (Sweep.all_programs sweep))

let cpu_avg sweep pass =
  Stats.mean
    (List.filter_map
       (fun p -> Sweep.cpu_improvement sweep ~program:p ~profile:pass)
       (Sweep.all_programs sweep))

let fig7 sweep =
  Report.section "Fig. 7 — average impact per pass: zkVMs vs CPU model";
  Report.paper
    "directions mostly agree; magnitudes much larger on x86 (hardware \
     heuristics under-deliver on zkVMs)";
  let rows =
    Catalog.swept_passes
    |> List.filter_map (fun pass ->
           let r0 = zk_avg sweep pass `R0 in
           let s1 = zk_avg sweep pass `Sp1 in
           let cpu = cpu_avg sweep pass in
           if Float.abs r0 < 1.0 && Float.abs s1 < 1.0 && Float.abs cpu < 1.0
           then None
           else
             Some
               (Float.abs cpu,
                [ pass; Report.pct r0; Report.pct s1; Report.pct cpu ]))
    |> List.sort (fun (a, _) (b, _) -> compare b a)
    |> List.map snd
  in
  Report.table ~headers:[ "pass"; "R0 exec"; "SP1 exec"; "CPU time" ] rows;
  Report.note "(passes with all effects below 1%% omitted, as in the paper)"

let fig8 sweep =
  Report.section "Fig. 8 — divergence counts: CPU gain vs RISC Zero effect";
  Report.paper
    "most passes gain on both with x86 ahead (inline, simplifycfg, \
     jump-threading); reg2mem/loop-extract help x86 but hurt R0; \
     ipsccp/attributor lean zkVM";
  let rows =
    Catalog.swept_passes
    |> List.filter_map (fun pass ->
           let counts = ref (0, 0, 0, 0) in
           List.iter
             (fun p ->
               match Sweep.cpu_improvement sweep ~program:p ~profile:pass with
               | None -> ()
               | Some cpu ->
                 let r0 =
                   Sweep.improvement sweep ~program:p ~profile:pass ~vm:`R0
                     ~metric:Sweep.Exec
                 in
                 let a, b, c, d = !counts in
                 if cpu > 1.0 && r0 < -1.0 then counts := (a + 1, b, c, d)
                 else if cpu > 1.0 && r0 > 1.0 && cpu -. r0 > 5.0 then
                   counts := (a, b + 1, c, d)
                 else if cpu > 1.0 && r0 > 1.0 && r0 -. cpu > 5.0 then
                   counts := (a, b, c + 1, d)
                 else if r0 > 1.0 && cpu < -1.0 then counts := (a, b, c, d + 1))
             (Sweep.all_programs sweep);
           let a, b, c, d = !counts in
           if a + b + c + d = 0 then None
           else
             Some
               [ pass; Report.int_s a; Report.int_s b; Report.int_s c;
                 Report.int_s d ])
  in
  Report.table
    ~headers:
      [ "pass"; "x86+ R0-"; "both+ x86>>"; "both+ R0>>"; "R0+ x86-" ]
    rows

let run sweep =
  fig7 sweep;
  fig8 sweep
