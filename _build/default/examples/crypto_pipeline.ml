(** A realistic zkVM scenario: hashing a document Merkle-style, with and
    without the SHA-256 precompile.  Shows why the paper finds smaller
    autotuning gains on precompile-heavy programs (Fig. 6b): the
    precompile's cost is invariant under compilation, so only the glue
    code shrinks.

    Run with: dune exec examples/crypto_pipeline.exe *)

open Zkopt_ir
open Zkopt_core
module B = Builder

let build ~use_precompile () =
  let m = Modul.create () in
  ignore (B.global_words m "state" Extern.sha256_init_state);
  ignore (B.global_zero m "blk" 64);
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         let state = Value.Glob "state" and blk = Value.Glob "blk" in
         B.for_ b ~from:(B.imm 0) ~bound:(B.imm 24) (fun chunk ->
             (* prepare the next 64-byte chunk of the "document" *)
             B.for_ b ~from:(B.imm 0) ~bound:(B.imm 16) (fun w ->
                 let v = B.add b (B.mul b chunk (B.imm 131)) w in
                 B.store b ~addr:(B.addr b blk ~index:w) v);
             if use_precompile then
               B.precompile b "sha256_compress" [ state; blk ]
             else B.call b "sha256_compress_soft" [ state; blk ]);
         B.ret b (Some (B.load b (B.addr b state)))));
  m

let () =
  print_endline "crypto pipeline: precompile vs in-guest SHA-256\n";
  List.iter
    (fun (label, use_precompile) ->
      Printf.printf "%s:\n" label;
      List.iter
        (fun (plabel, profile) ->
          let c = Measure.prepare ~build:(build ~use_precompile) profile in
          let r0 = Measure.run_zkvm Zkopt_zkvm.Config.risc0 c in
          Printf.printf "  %-12s risc0: %8d cycles, prove %6.2fs\n" plabel
            r0.Measure.cycles r0.Measure.prove_time_s)
        [ ("baseline", Profile.Baseline);
          ("-O3", Profile.Level Zkopt_passes.Catalog.O3) ];
      print_newline ())
    [ ("with the sha256 precompile", true); ("fully in-guest", false) ];
  print_endline "the precompile version barely moves under -O3 (fixed circuit";
  print_endline "cost dominates); the in-guest version optimizes like any code."
