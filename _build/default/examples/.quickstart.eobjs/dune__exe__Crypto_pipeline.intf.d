examples/crypto_pipeline.mli:
