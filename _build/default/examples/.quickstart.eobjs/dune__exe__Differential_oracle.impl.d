examples/differential_oracle.ml: Int64 List Measure Printf Profile String Zkopt_core Zkopt_passes Zkopt_workloads Zkopt_zkvm
