examples/autotune_demo.ml: Measure Printf Profile String Zkopt_autotune Zkopt_core Zkopt_passes Zkopt_workloads Zkopt_zkvm
