examples/quickstart.mli:
