examples/crypto_pipeline.ml: Builder Extern List Measure Modul Printf Profile Ty Value Zkopt_core Zkopt_ir Zkopt_passes Zkopt_zkvm
