examples/quickstart.ml: Builder List Measure Modul Printf Profile Ty Value Zkopt_core Zkopt_ir Zkopt_passes Zkopt_zkvm
