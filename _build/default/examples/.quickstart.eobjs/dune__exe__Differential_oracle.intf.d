examples/differential_oracle.mli:
