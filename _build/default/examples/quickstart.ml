(** Quickstart: build a guest program with the IR builder, compile it at
    two optimization levels, and measure it on both simulated zkVMs and
    the CPU model.

    Run with: dune exec examples/quickstart.exe *)

open Zkopt_ir
open Zkopt_core
module B = Builder

(* A little guest: hash-mix a buffer and return a checksum. *)
let build () =
  let m = Modul.create () in
  ignore (B.global_zero m "buf" (4 * 256));
  ignore
    (B.define m "mix" ~params:[ Ty.I32; Ty.I32 ] ~ret:Ty.I32 (fun b ps ->
         let h = B.xor b (List.nth ps 0) (List.nth ps 1) in
         let h = B.mul b h (B.imm 0x9E3779B1) in
         B.ret b (Some (B.xor b h (B.lshr b h (B.imm 15))))));
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         let buf = Value.Glob "buf" in
         B.for_ b ~from:(B.imm 0) ~bound:(B.imm 256) (fun i ->
             let v = B.callv b "mix" [ i; B.imm 12345 ] in
             B.store b ~addr:(B.addr b buf ~index:i) v);
         let acc = B.var b Ty.I32 (B.imm 0) in
         B.for_ b ~from:(B.imm 0) ~bound:(B.imm 256) (fun i ->
             let v = B.load b (B.addr b buf ~index:i) in
             B.set b Ty.I32 acc (B.callv b "mix" [ Value.Reg acc; v ]));
         B.ret b (Some (Value.Reg acc))));
  m

let show label (zk : Measure.zk_metrics) =
  Printf.printf "  %-22s %-6s %8d cycles  exec %.4fs  prove %.2fs  (%d segments)\n"
    label zk.Measure.vm zk.Measure.cycles zk.Measure.exec_time_s
    zk.Measure.prove_time_s zk.Measure.segments

let () =
  print_endline "quickstart: one guest program, three toolchains\n";
  List.iter
    (fun (label, profile) ->
      let c = Measure.prepare ~build profile in
      show label (Measure.run_zkvm Zkopt_zkvm.Config.risc0 c);
      show label (Measure.run_zkvm Zkopt_zkvm.Config.sp1 c);
      let cpu = Measure.run_cpu c in
      Printf.printf "  %-22s %-6s %8.0f cycles  native %.6fs\n\n" label "cpu"
        cpu.Measure.cpu_cycles cpu.Measure.cpu_time_s)
    [ ("unoptimized", Profile.Baseline);
      ("-O3", Profile.Level Zkopt_passes.Catalog.O3);
      ("-O3 (zkVM-aware)", Profile.Zkvm_o3) ];
  print_endline "note how -O3 helps everywhere, and the zkVM-aware variant";
  print_endline "trades CPU-oriented rewrites for proof-friendly code."
