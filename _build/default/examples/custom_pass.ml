(** Writing a custom pass against the public API: a "zkVM page-coalescing"
    prototype in the spirit of the paper's §6.2 future-work suggestion —
    move small, hot globals next to each other so they share 1 KB pages,
    reducing page-in/page-out charges.

    Run with: dune exec examples/custom_pass.exe *)

open Zkopt_ir
open Zkopt_core
module B = Builder

(* The pass: sort globals so the small (hot) ones pack into the fewest
   pages.  Global placement is declaration-ordered, so reordering the
   declaration list changes the page layout. *)
let page_coalesce (_config : Zkopt_passes.Pass.config) (m : Modul.t) =
  let sorted =
    List.stable_sort
      (fun a b -> compare (Modul.global_size a) (Modul.global_size b))
      m.Modul.globals
  in
  if sorted <> m.Modul.globals then begin
    m.Modul.globals <- sorted;
    true
  end
  else false

let () = Zkopt_passes.Pass.register "page-coalescing"
    "pack small globals into shared zkVM pages" page_coalesce

(* A guest that touches many small counters plus one big cold array: with
   declaration order [big; small...] the counters are spread over pages
   behind the array. *)
let build () =
  let m = Modul.create () in
  (* hot counters interleaved with cold kilobyte-sized buffers, as a
     naive frontend would lay them out: every counter lands on its own
     zkVM page *)
  for k = 0 to 11 do
    ignore (B.global_zero m (Printf.sprintf "counter%d" k) 16);
    ignore (B.global_zero m (Printf.sprintf "cold%d" k) 1024)
  done;
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         B.for_ b ~from:(B.imm 0) ~bound:(B.imm 500) (fun i ->
             for k = 0 to 11 do
               let g = Value.Glob (Printf.sprintf "counter%d" k) in
               B.store b ~addr:(B.addr b g) (B.add b i (B.imm k))
             done);
         B.ret b (Some (B.load b (B.addr b (Value.Glob "counter7"))))));
  m

let () =
  print_endline "custom pass: page coalescing for zkVM globals\n";
  List.iter
    (fun (label, profile) ->
      let c = Measure.prepare ~build profile in
      let r0 = Measure.run_zkvm Zkopt_zkvm.Config.risc0 c in
      Printf.printf "  %-18s %8d cycles, paging %6d cycles, %d page-ins\n"
        label r0.Measure.cycles r0.Measure.paging_cycles r0.Measure.page_ins)
    [ ("original layout", Profile.Baseline);
      ( "page-coalesced",
        Profile.Custom ([ "page-coalescing" ], Zkopt_passes.Pass.standard_config) ) ];
  print_endline "\nfewer touched pages -> fewer 1130-cycle page events on risc0."
