(** zkbench — the command-line front end.

    {v
    zkbench list                         # all 58 programs
    zkbench passes                       # the 64 swept passes
    zkbench backends                     # the registered zkVM backends
    zkbench run fibonacci -O3            # measure one program
    zkbench run npb-lu --pass licm       # one pass vs baseline
    zkbench profile npb-lu --profile baseline --out base.prof
    zkbench profile npb-lu --pass licm --diff base.prof
                                         # where did licm's cycles go?
    zkbench sweep --program fibonacci    # all 71 profiles on one program
    zkbench sweepall --quick --checkpoint sweep.ckpt
                                         # fault-tolerant full-matrix sweep;
                                         # re-run the same command to resume
    zkbench settle --quick --backends risc0,sp1,valida
                                         # price the verifier: proof sizes,
                                         # aggregation tree, EVM gas
    zkbench fuzz --seeds 1..500 --jobs 4 --minimize --corpus corpus
                                         # differential fuzzing campaign
    zkbench autotune npb-mg --iters 80   # GA pass-sequence search
    zkbench tune npb-sp --backend risc0 --iterations 1600 --jobs 8
                                         # full-budget parallel search with
                                         # prefix caching and --profile-out
    zkbench sweepall --tuned tuned.json  # tuned profiles join the matrix
    zkbench asm fibonacci -O3            # dump the RV32 assembly
    zkbench serve --dir _zkserve &       # persistent sweep service
    zkbench submit sweep --programs factorial,sha256 --quick
                                         # queue a job; rows stream back
    zkbench status                       # jobs + shared-cache counters
    zkbench shutdown                     # graceful drain (resumable)
    zkbench bench                        # cells/sec throughput baseline
    v} *)

open Cmdliner
open Zkopt_core
module Json = Zkopt_report.Json
module Backend = Zkopt_backend.Backend
module Registry = Zkopt_backend.Registry

(* the valida backend registers itself at module init; force linkage *)
let () = Zkopt_valida.Vbackend.ensure ()

(** The one [--vm NAME] resolution point: every subcommand goes through
    the registry, and a mistyped name lists what is registered. *)
let resolve_backend name =
  try Registry.find name with Invalid_argument msg -> failwith msg

let find_workload name =
  Zkopt_workloads.Suite.check_composition ();
  Zkopt_workloads.Workload.find name

let size_of_quick quick =
  if quick then Zkopt_workloads.Workload.Quick else Zkopt_workloads.Workload.Full

let comma_list s =
  List.filter (fun x -> x <> "") (String.split_on_char ',' s)

let show_metrics (zk : Measure.zk_metrics) =
  Printf.printf "  %-6s %10d cycles  exec %8.4fs  prove %8.2fs  %2d seg  paging %8d\n"
    zk.Measure.vm zk.Measure.cycles zk.Measure.exec_time_s zk.Measure.prove_time_s
    zk.Measure.segments zk.Measure.paging_cycles

let profile_of ~level ~pass ~zk_o3 =
  match (level, pass, zk_o3) with
  | _, Some p, _ -> Profile.Single_pass p
  | Some l, _, _ ->
    let lvl =
      match l with
      | "-O0" | "O0" -> Zkopt_passes.Catalog.O0
      | "-O1" | "O1" -> Zkopt_passes.Catalog.O1
      | "-O2" | "O2" -> Zkopt_passes.Catalog.O2
      | "-O3" | "O3" -> Zkopt_passes.Catalog.O3
      | "-Os" | "Os" -> Zkopt_passes.Catalog.Os
      | "-Oz" | "Oz" -> Zkopt_passes.Catalog.Oz
      | other -> failwith ("unknown level " ^ other)
    in
    Profile.Level lvl
  | _, _, true -> Profile.Zkvm_o3
  | None, None, false -> Profile.Baseline

(** Resolve a generic [--profile NAME]: "baseline", a level, the
    zkVM-aware -O3, or any swept pass by name. *)
let profile_by_name = function
  | "baseline" -> Profile.Baseline
  | "zk-o3" | "zkvm-o3" | "-O3(zkvm)" -> Profile.Zkvm_o3
  | ("O0" | "-O0" | "O1" | "-O1" | "O2" | "-O2" | "O3" | "-O3" | "Os" | "-Os"
    | "Oz" | "-Oz") as l ->
    profile_of ~level:(Some l) ~pass:None ~zk_o3:false
  | p ->
    ignore (Zkopt_passes.Pass.find p) (* errors early on unknown names *);
    Profile.Single_pass p

let json_of_zk (zk : Measure.zk_metrics) : Json.t =
  Json.Obj
    [
      ("vm", Json.Str zk.Measure.vm);
      ("cycles", Json.Int zk.Measure.cycles);
      ("exec_time_s", Json.Float zk.Measure.exec_time_s);
      ("prove_time_s", Json.Float zk.Measure.prove_time_s);
      ("segments", Json.Int zk.Measure.segments);
      ("paging_cycles", Json.Int zk.Measure.paging_cycles);
      ("page_ins", Json.Int zk.Measure.page_ins);
      ("page_outs", Json.Int zk.Measure.page_outs);
      ("loads", Json.Int zk.Measure.loads);
      ("stores", Json.Int zk.Measure.stores);
    ]

let json_of_cpu (cpu : Measure.cpu_metrics) : Json.t =
  Json.Obj
    [
      ("cycles", Json.Float cpu.Measure.cpu_cycles);
      ("time_s", Json.Float cpu.Measure.cpu_time_s);
      ("mispredicts", Json.Int cpu.Measure.mispredicts);
      ("cache_misses", Json.Int cpu.Measure.cache_misses);
    ]

(* ---- subcommands --------------------------------------------------- *)

let list_cmd =
  let run () =
    Zkopt_workloads.Suite.check_composition ();
    List.iter
      (fun (w : Zkopt_workloads.Workload.t) ->
        Printf.printf "%-28s %-10s%s\n" w.Zkopt_workloads.Workload.name
          w.Zkopt_workloads.Workload.suite
          (if w.Zkopt_workloads.Workload.uses_precompiles then "  [precompiles]"
           else ""))
      (Zkopt_workloads.Workload.all ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List the 58 benchmark programs")
    Term.(const run $ const ())

let passes_cmd =
  let run () =
    List.iter
      (fun p ->
        let pass = Zkopt_passes.Pass.find p in
        Printf.printf "%-28s %s\n" p pass.Zkopt_passes.Pass.descr)
      Zkopt_passes.Catalog.swept_passes
  in
  Cmd.v (Cmd.info "passes" ~doc:"List the 64 swept optimization passes")
    Term.(const run $ const ())

let prog_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM")

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Use reduced (test) input sizes")

let level_arg =
  Arg.(value & opt (some string) None
       & info [ "O"; "level" ] ~docv:"LEVEL" ~doc:"Optimization level (O0..O3, Os, Oz)")

let pass_arg =
  Arg.(value & opt (some string) None
       & info [ "pass" ] ~docv:"PASS" ~doc:"Run a single pass instead of a level")

let zk_o3_arg =
  Arg.(value & flag
       & info [ "zk-o3" ] ~doc:"Use the zkVM-aware modified -O3 pipeline")

let json_arg =
  Arg.(value & flag
       & info [ "json" ] ~doc:"Emit machine-readable JSON instead of tables")

(** Compile once per codegen family: backends sharing a schema share the
    artifact, exactly like the sweep harness's compile cache. *)
let compiled_family () =
  let arts : (string, Backend.compiled) Hashtbl.t = Hashtbl.create 4 in
  fun (m : Zkopt_ir.Modul.t) (b : Backend.t) ->
    match Hashtbl.find_opt arts b.Backend.schema with
    | Some c -> c
    | None ->
      let c = b.Backend.compile m in
      Hashtbl.add arts b.Backend.schema c;
      c

let run_cmd =
  let run prog quick level pass zk_o3 json =
    let w = find_workload prog in
    let build () = w.Zkopt_workloads.Workload.build (size_of_quick quick) in
    let profile = profile_of ~level ~pass ~zk_o3 in
    let m = Measure.prepare_ir ~build profile in
    let compiled_for = compiled_family () in
    let backends = Registry.all () in
    let zks =
      List.map
        (fun (b : Backend.t) ->
          let c = compiled_for m b in
          (c.Backend.measure ~vm:b.Backend.name ()).Backend.zk)
        backends
    in
    let static_instrs =
      (compiled_for m (List.hd backends)).Backend.static_instrs
    in
    let cpu =
      List.find_map
        (fun (b : Backend.t) -> (compiled_for m b).Backend.measure_cpu)
        backends
      |> Option.map (fun f -> f ?fuel:None ?sink:None ())
    in
    if json then
      print_endline
        (Json.to_string
           (Json.Obj
              ([
                 ("program", Json.Str prog);
                 ("profile", Json.Str (Profile.name profile));
                 ("static_instrs", Json.Int static_instrs);
                 ("zkvms", Json.Arr (List.map json_of_zk zks));
               ]
              @
              match cpu with
              | Some c -> [ ("cpu", json_of_cpu c) ]
              | None -> [])))
    else begin
      Printf.printf "%s under %s:\n" prog (Profile.name profile);
      List.iter show_metrics zks;
      (match cpu with
      | Some cpu ->
        Printf.printf "  %-6s %10.0f cycles  time %8.6fs  (CPU model)\n" "cpu"
          cpu.Measure.cpu_cycles cpu.Measure.cpu_time_s
      | None -> ());
      Printf.printf "  static size: %d instructions\n" static_instrs
    end
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Measure one program under a profile on every registered backend")
    Term.(const run $ prog_arg $ quick_arg $ level_arg $ pass_arg $ zk_o3_arg
          $ json_arg)

let profile_cmd =
  let named_arg =
    Arg.(value & opt (some string) None
         & info [ "profile" ] ~docv:"NAME"
             ~doc:"Profile by name: baseline, a level (O0..Oz), zk-o3, or \
                   any swept pass")
  in
  let vm_arg =
    Arg.(value & opt string "risc0"
         & info [ "vm" ] ~docv:"VM"
             ~doc:"Backend to attribute (any registered backend; see \
                   `zkbench backends`)")
  in
  let top_arg =
    Arg.(value & opt int 20 & info [ "top" ] ~docv:"N" ~doc:"Rows per table")
  in
  let diff_arg =
    Arg.(value & opt (some string) None
         & info [ "diff" ] ~docv:"FILE"
             ~doc:"Diff this run against a baseline profile saved with --out")
  in
  let folded_arg =
    Arg.(value & opt (some string) None
         & info [ "folded" ] ~docv:"FILE"
             ~doc:"Write folded call stacks (flamegraph.pl input) to FILE")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Save the profile to FILE for a later --diff")
  in
  let run prog quick level pass zk_o3 named vm top diff folded out json =
    let w = find_workload prog in
    let build () = w.Zkopt_workloads.Workload.build (size_of_quick quick) in
    let profile =
      match named with
      | Some n -> profile_by_name n
      | None -> profile_of ~level ~pass ~zk_o3
    in
    let b = resolve_backend vm in
    let m = Measure.prepare_ir ~build profile in
    let c = b.Backend.compile m in
    let label = Profile.name profile in
    let metrics, prof = Zkopt_prof.Driver.profile_backend ~label b c in
    let zk = metrics.Backend.zk in
    (match out with Some f -> Zkopt_prof.Profile.save prof f | None -> ());
    (match folded with
    | Some f ->
      let oc = open_out f in
      Zkopt_prof.Render.folded oc prof;
      close_out oc
    | None -> ());
    match diff with
    | Some basefile ->
      let base = Zkopt_prof.Profile.load basefile in
      if json then
        print_endline
          (Json.to_string (Zkopt_prof.Render.json_of_diff ~base ~cand:prof ()))
      else Zkopt_prof.Render.diff ~top ~base ~cand:prof ()
    | None ->
      if json then
        print_endline
          (Json.to_string
             (Json.Obj
                [
                  ("program", Json.Str prog);
                  ( "metrics",
                    Json.Obj
                      [
                        ("vm", Json.Str zk.Measure.vm);
                        ("cycles", Json.Int zk.Measure.cycles);
                        ("segments", Json.Int zk.Measure.segments);
                        ("paging_cycles", Json.Int zk.Measure.paging_cycles);
                      ] );
                  ("profile", Zkopt_prof.Render.json_of_profile prof);
                ]))
      else begin
        Printf.printf "%s under %s [vm=%s]: %d cycles, %d segments\n" prog
          label zk.Measure.vm zk.Measure.cycles zk.Measure.segments;
        Zkopt_prof.Render.table ~top prof
      end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Attribute every zkVM cycle (exec, paging, padding, CPU model) \
             to the IR site that caused it; optionally diff two profiles")
    Term.(const run $ prog_arg $ quick_arg $ level_arg $ pass_arg $ zk_o3_arg
          $ named_arg $ vm_arg $ top_arg $ diff_arg $ folded_arg $ out_arg
          $ json_arg)

let sweep_cmd =
  let run prog quick =
    let w = find_workload prog in
    let build () = w.Zkopt_workloads.Workload.build (size_of_quick quick) in
    let base = Measure.prepare ~build Profile.Baseline in
    let b0 = Measure.run_zkvm Zkopt_zkvm.Config.risc0 base in
    Printf.printf "%-28s %12s %9s\n" "profile" "r0 cycles" "vs base";
    List.iter
      (fun profile ->
        let c = Measure.prepare ~build profile in
        let r0 = Measure.run_zkvm Zkopt_zkvm.Config.risc0 c in
        Printf.printf "%-28s %12d %+8.1f%%\n" (Profile.name profile)
          r0.Measure.cycles
          ((1.0 -. float_of_int r0.Measure.cycles /. float_of_int b0.Measure.cycles)
          *. 100.0))
      Profile.all_71
  in
  Cmd.v (Cmd.info "sweep" ~doc:"Run all 71 profiles on one program")
    Term.(const run $ prog_arg $ quick_arg)

let sweepall_cmd =
  let ckpt_arg =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"Stream completed cells to an append-only checkpoint file; \
                   rerunning with the same file resumes the sweep")
  in
  let fresh_arg =
    Arg.(value & flag
         & info [ "fresh" ]
             ~doc:"Ignore an existing checkpoint (default is to resume)")
  in
  let budget_arg =
    Arg.(value & opt int 32
         & info [ "failure-budget" ] ~docv:"N"
             ~doc:"Quarantined cells tolerated before aborting")
  in
  let limit_arg =
    Arg.(value & opt (some int) None
         & info [ "limit" ] ~docv:"N"
             ~doc:"Measure at most N new cells then stop (the checkpoint \
                   keeps the rest resumable)")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Worker domains executing sweep cells in parallel \
                   (default: the recommended domain count of this \
                   machine; results are identical at any job count)")
  in
  let cache_dir_arg =
    Arg.(value & opt (some string) (Some "_zkcache")
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"On-disk compile-cache directory, shared across runs \
                   and versioned by schema tag (default: _zkcache)")
  in
  let no_disk_cache_arg =
    Arg.(value & flag
         & info [ "no-disk-cache" ]
             ~doc:"Keep the compile cache in memory only (no _zkcache)")
  in
  let backends_arg =
    Arg.(value & opt (some string) None
         & info [ "backends" ] ~docv:"NAMES"
             ~doc:"Comma-separated backend columns to measure (default: \
                   risc0,sp1; see `zkbench backends`)")
  in
  let tuned_arg =
    Arg.(value & opt (some string) None
         & info [ "tuned" ] ~docv:"FILE"
             ~doc:"Add the tuned profiles from a `zkbench tune \
                   --profile-out` JSON file as extra matrix columns")
  in
  let run quick ckpt fresh budget limit jobs cache_dir no_disk_cache backends
      tuned =
    let module H = Zkopt_harness.Harness in
    let size = size_of_quick quick in
    let profiles =
      match tuned with
      | None -> None
      | Some file -> (
        match Zkopt_autotune.Tuned.load file with
        | Ok entries ->
          Some
            (Profile.all_71
            @ List.map Zkopt_autotune.Tuned.to_profile entries)
        | Error msg -> failwith (Printf.sprintf "--tuned %s: %s" file msg))
    in
    let backends =
      Option.map
        (fun s ->
          List.map resolve_backend
            (List.filter
               (fun n -> n <> "")
               (String.split_on_char ',' s)))
        backends
    in
    let jobs =
      match jobs with
      | Some n -> max 1 n
      | None -> Zkopt_exec.Pool.recommended_jobs ()
    in
    let cache =
      let dir = if no_disk_cache then None else cache_dir in
      Zkopt_exec.Cache.create ?dir ()
    in
    let cfg =
      {
        (H.default ~size) with
        H.progress = true;
        profiles;
        checkpoint = ckpt;
        resume = not fresh;
        failure_budget = budget;
        limit;
        jobs;
        cache = Some cache;
        backends;
      }
    in
    match H.run cfg with
    | o ->
      Printf.printf
        "sweep: %d points (%d resumed from checkpoint, %d measured now, %d \
         fuel retries; %d jobs)\n"
        (Hashtbl.length o.H.points) o.H.resumed o.H.executed o.H.retries jobs;
      let s = o.H.cache_stats in
      Printf.printf
        "compile cache: %d mem + %d disk hits, %d compiles (%.1f%% hit rate)\n"
        s.Zkopt_exec.Cache.hits s.Zkopt_exec.Cache.disk_hits
        s.Zkopt_exec.Cache.misses
        (Zkopt_exec.Cache.hit_rate_pct s);
      List.iter
        (fun ((c : Zkopt_harness.Error.coord), msg) ->
          Printf.printf "degraded: %s/%s: CPU model failed (%s); zkVM \
                         metrics kept\n"
            c.Zkopt_harness.Error.program c.Zkopt_harness.Error.profile msg)
        o.H.degraded;
      print_endline (H.quarantine_report o.H.quarantined);
      if not o.H.completed then
        Printf.printf
          "stopped at --limit; rerun the same command to resume from the \
           checkpoint\n"
    | exception H.Budget_exceeded errs ->
      Printf.eprintf "sweep aborted: failure budget exceeded\n%s\n"
        (H.quarantine_report errs);
      exit 1
  in
  Cmd.v
    (Cmd.info "sweepall"
       ~doc:"Fault-tolerant full-matrix sweep (all programs x all profiles) \
             with multicore execution, a content-addressed compile cache, \
             quarantine, retry, and checkpoint/resume")
    Term.(const run $ quick_arg $ ckpt_arg $ fresh_arg $ budget_arg
          $ limit_arg $ jobs_arg $ cache_dir_arg $ no_disk_cache_arg
          $ backends_arg $ tuned_arg)

let settle_cmd =
  let module S = Zkopt_settle.Settle in
  let module Ssweep = Zkopt_settle.Ssweep in
  let programs_arg =
    Arg.(value & opt (some string) None
         & info [ "programs" ] ~docv:"NAMES"
             ~doc:"Comma-separated programs to price (default: the full \
                   suite)")
  in
  let profiles_arg =
    Arg.(value & opt (some string) None
         & info [ "profiles" ] ~docv:"NAMES"
             ~doc:"Comma-separated profiles (default: \
                   baseline,O1,O2,O3,Os,Oz,zk-o3)")
  in
  let backends_arg =
    Arg.(value & opt (some string) None
         & info [ "backends" ] ~docv:"NAMES"
             ~doc:"Comma-separated backends to price (default: every \
                   registered backend)")
  in
  let arity_arg =
    Arg.(value & opt int 8
         & info [ "arity" ] ~docv:"N"
             ~doc:"Aggregation fan-in of the recursion tree")
  in
  let w_prove_arg =
    Arg.(value & opt float 1.0
         & info [ "w-prove" ] ~docv:"W"
             ~doc:"Weight on segment proving seconds")
  in
  let w_agg_arg =
    Arg.(value & opt float 1.0
         & info [ "w-agg" ] ~docv:"W"
             ~doc:"Weight on aggregation proving seconds")
  in
  let w_gas_arg =
    Arg.(value & opt float 1.0
         & info [ "w-gas" ] ~docv:"W" ~doc:"Weight on verification gas")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Worker domains pricing cells in parallel (default: the \
                   recommended domain count; the row stream is \
                   byte-identical at any job count)")
  in
  let ckpt_arg =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"Stream completed rows to an append-only checkpoint \
                   file; rerunning with the same file resumes the sweep")
  in
  let fresh_arg =
    Arg.(value & flag
         & info [ "fresh" ]
             ~doc:"Discard an existing checkpoint (default is to resume)")
  in
  let cache_dir_arg =
    Arg.(value & opt (some string) (Some "_zkcache")
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"On-disk compile-cache directory (default: _zkcache)")
  in
  let no_disk_cache_arg =
    Arg.(value & flag
         & info [ "no-disk-cache" ]
             ~doc:"Keep the compile cache in memory only")
  in
  let run quick programs profiles backends arity w_prove w_agg w_gas jobs
      ckpt fresh cache_dir no_disk_cache json =
    let size = size_of_quick quick in
    Zkopt_workloads.Suite.check_composition ();
    let program_names =
      match programs with
      | Some s -> comma_list s
      | None -> Zkopt_workloads.Workload.names ()
    in
    let programs =
      List.map
        (fun n ->
          let w = Zkopt_workloads.Workload.find n in
          (n, fun () -> w.Zkopt_workloads.Workload.build size))
        program_names
    in
    let profile_names =
      match profiles with
      | Some s -> comma_list s
      | None -> [ "baseline"; "O1"; "O2"; "O3"; "Os"; "Oz"; "zk-o3" ]
    in
    let profiles =
      List.map
        (fun n ->
          let p = profile_by_name n in
          (Profile.name p, p))
        profile_names
    in
    let backends =
      match backends with
      | Some s -> List.map resolve_backend (comma_list s)
      | None -> Registry.all ()
    in
    let jobs =
      match jobs with
      | Some n -> max 1 n
      | None -> Zkopt_exec.Pool.recommended_jobs ()
    in
    (if fresh then
       match ckpt with
       | Some p when Sys.file_exists p -> Sys.remove p
       | _ -> ());
    let cache =
      let dir = if no_disk_cache then None else cache_dir in
      Zkopt_exec.Cache.create ?dir ()
    in
    let cfg =
      {
        (Ssweep.default ~jobs ()) with
        Ssweep.programs;
        profiles;
        backends;
        arity = Some arity;
        weights = { S.w_prove; w_agg; w_gas };
        cache = Some cache;
        checkpoint = ckpt;
      }
    in
    let o = Ssweep.run cfg in
    let reports = List.filter_map S.report_of_row o.Ssweep.rows in
    if json then
      List.iter
        (fun (program, profile, r) ->
          print_endline
            (Json.to_string (S.json_of_report ~program ~profile r)))
        reports
    else begin
      Printf.printf "%-24s %-10s %-7s %10s %4s %8s %9s %5s %8s %12s\n"
        "program" "profile" "backend" "cycles" "segs" "prove-s" "agg-ms"
        "depth" "gas" "settled";
      List.iter
        (fun (program, profile, (r : S.report)) ->
          Printf.printf
            "%-24s %-10s %-7s %10d %4d %8.2f %9.1f %5d %8d %12d\n" program
            profile r.S.backend r.S.cycles r.S.segments r.S.prove_s
            (r.S.plan.Zkopt_settle.Recursion.agg_total_s *. 1e3)
            r.S.plan.Zkopt_settle.Recursion.depth r.S.gas.Zkopt_settle.Gas.total
            r.S.settled_cost)
        reports;
      Printf.printf
        "settle: %d cells priced (%d replayed from checkpoint; %d jobs)\n"
        o.Ssweep.cells o.Ssweep.replayed jobs
    end
  in
  Cmd.v
    (Cmd.info "settle"
       ~doc:"Price the verifier: sweep a (program x profile x backend) \
             matrix through the settlement models — segment proof sizes, \
             the recursion/aggregation tree, and the EVM verification-gas \
             model — and report the settled cost per cell")
    Term.(const run $ quick_arg $ programs_arg $ profiles_arg
          $ backends_arg $ arity_arg $ w_prove_arg $ w_agg_arg $ w_gas_arg
          $ jobs_arg $ ckpt_arg $ fresh_arg $ cache_dir_arg
          $ no_disk_cache_arg $ json_arg)

let fuzz_cmd =
  let module Case = Zkopt_fuzz.Case in
  let module Campaign = Zkopt_fuzz.Campaign in
  let seeds_arg =
    Arg.(value & opt string "1..100"
         & info [ "seeds" ] ~docv:"A..B"
             ~doc:"Random-program seed range; \"N\" means 1..N")
  in
  let workloads_arg =
    Arg.(value & opt (some string) None
         & info [ "workloads" ] ~docv:"NAMES"
             ~doc:"Also fuzz these suite programs (comma-separated, quick \
                   input sizes)")
  in
  let backends_arg =
    Arg.(value & opt (some string) None
         & info [ "backends" ] ~docv:"NAMES"
             ~doc:"Comma-separated differential columns (default: every \
                   registered backend; \"sp1-dense\" adds the dense-shard \
                   \xc2\xa74.2 reproduction config)")
  in
  let pipelines_arg =
    Arg.(value & opt string "baseline,O3,zk-o3"
         & info [ "pipelines" ] ~docv:"SPECS"
             ~doc:"Comma-separated pipeline specs: baseline, O0..Oz, zk-o3, \
                   a pass name, or a;b;c / zk:a;b;c sequences")
  in
  let random_arg =
    Arg.(value & opt int 0
         & info [ "random-seqs" ] ~docv:"N"
             ~doc:"Additional random pass sequences per source \
                   (deterministic in the seed)")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Worker domains running cases in parallel (default: the \
                   recommended domain count)")
  in
  let ckpt_arg =
    Arg.(value & opt string "fuzz.ckpt"
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"Append-only campaign checkpoint; rerunning with the same \
                   file resumes where the previous run stopped (default: \
                   fuzz.ckpt)")
  in
  let no_ckpt_arg =
    Arg.(value & flag
         & info [ "no-checkpoint" ] ~doc:"Run without a checkpoint file")
  in
  let fresh_arg =
    Arg.(value & flag
         & info [ "fresh" ]
             ~doc:"Ignore an existing checkpoint (default is to resume)")
  in
  let budget_arg =
    Arg.(value & opt (some int) None
         & info [ "failure-budget" ] ~docv:"N"
             ~doc:"Stop scheduling new cases after N divergences")
  in
  let limit_arg =
    Arg.(value & opt (some int) None
         & info [ "limit" ] ~docv:"N"
             ~doc:"Cap the campaign at N cases (checkpoint keeps the rest \
                   resumable)")
  in
  let minimize_arg =
    Arg.(value & flag
         & info [ "minimize" ]
             ~doc:"Shrink every finding with the delta-debugging minimizer")
  in
  let corpus_arg =
    Arg.(value & opt (some string) None
         & info [ "corpus" ] ~docv:"DIR"
             ~doc:"Persist (minimized) findings as replayable corpus \
                   entries under DIR")
  in
  let verbose_arg =
    Arg.(value & flag
         & info [ "verbose" ] ~doc:"Log every case, not just findings")
  in
  let run seeds workloads backends pipelines random_seqs jobs ckpt no_ckpt
      fresh budget limit minimize corpus verbose =
    let split s = List.filter (fun x -> x <> "") (String.split_on_char ',' s) in
    let lo, hi =
      match Zkopt_devutil.Seedfmt.range_of_string seeds with
      | Some r -> r
      | None -> failwith (Printf.sprintf "bad --seeds %S (expected N or A..B)" seeds)
    in
    let backends =
      match backends with
      | None -> Registry.all ()
      | Some s ->
        List.map
          (fun n ->
            try Case.resolve_backend n
            with Invalid_argument msg -> failwith msg)
          (split s)
    in
    let pipelines =
      List.map
        (fun spec ->
          match Case.pipeline_of_spec spec with
          | Ok p -> p
          | Error e -> failwith e)
        (split pipelines)
    in
    let sources =
      List.init (hi - lo + 1) (fun i -> Case.seed (lo + i))
      @ (match workloads with
        | None -> []
        | Some s ->
          List.map
            (fun w ->
              ignore (find_workload w);
              Case.Workload w)
            (split s))
    in
    let jobs =
      match jobs with
      | Some n -> max 1 n
      | None -> Zkopt_exec.Pool.recommended_jobs ()
    in
    let cfg =
      {
        (Campaign.default ~backends) with
        Campaign.sources;
        pipelines;
        random_seqs;
        jobs;
        checkpoint = (if no_ckpt then None else Some ckpt);
        resume = not fresh;
        failure_budget = budget;
        minimize;
        corpus;
        limit;
        log =
          (fun line ->
            if verbose || not (String.length line >= 2 && line.[0] = 'o') then
              Printf.printf "%s\n%!" line);
      }
    in
    let s = Campaign.run cfg in
    Printf.printf "%s (%d jobs)\n" (Campaign.describe s) jobs;
    List.iter
      (fun (f : Campaign.finding) ->
        Printf.printf "  %s / %s -> %s: %s%s\n"
          (Case.source_name f.Campaign.case.Case.source)
          f.Campaign.case.Case.pipeline.Case.spec
          (Case.divergence_key f.Campaign.divergence)
          (Case.divergence_detail f.Campaign.divergence)
          (match f.Campaign.corpus_path with
          | Some p -> "  [" ^ p ^ "]"
          | None -> ""))
      s.Campaign.findings;
    if s.Campaign.findings <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzing campaign: random programs and suite \
             workloads run across backends and pass pipelines; divergences \
             are classified, minimized, and persisted to a replayable \
             corpus")
    Term.(const run $ seeds_arg $ workloads_arg $ backends_arg
          $ pipelines_arg $ random_arg $ jobs_arg $ ckpt_arg $ no_ckpt_arg
          $ fresh_arg $ budget_arg $ limit_arg $ minimize_arg $ corpus_arg
          $ verbose_arg)

let autotune_cmd =
  let iters_arg =
    Arg.(value & opt int 80 & info [ "iters" ] ~doc:"GA evaluations")
  in
  let vm_arg =
    Arg.(value & opt string "risc0"
         & info [ "vm" ] ~doc:"Backend to tune for (see `zkbench backends`)")
  in
  let run prog quick iters vm =
    let w = find_workload prog in
    let build () = w.Zkopt_workloads.Workload.build (size_of_quick quick) in
    let b = resolve_backend vm in
    let ga =
      Zkopt_autotune.Autotune.run ~iterations:iters
        ~cycles:(Zkopt_autotune.Autotune.backend_cycles ~build b)
        ()
    in
    let best = ga.Zkopt_autotune.Autotune.best in
    Printf.printf "best (%d cycles): %s\n" best.Zkopt_autotune.Autotune.fitness
      (String.concat " -> " best.Zkopt_autotune.Autotune.genome);
    let o3 =
      Measure.prepare_ir ~build (Profile.Level Zkopt_passes.Catalog.O3)
    in
    let c = b.Backend.compile o3 in
    let o3m = (c.Backend.measure ~vm:b.Backend.name ()).Backend.zk in
    Printf.printf "-O3 reference: %d cycles (tuned is %+.1f%%)\n"
      o3m.Measure.cycles
      ((1.0
       -. float_of_int best.Zkopt_autotune.Autotune.fitness
          /. float_of_int o3m.Measure.cycles)
      *. 100.0)
  in
  Cmd.v (Cmd.info "autotune" ~doc:"Genetic pass-sequence search for a program")
    Term.(const run $ prog_arg $ quick_arg $ iters_arg $ vm_arg)

let tune_cmd =
  let module A = Zkopt_autotune.Autotune in
  let module Tuned = Zkopt_autotune.Tuned in
  let vm_arg =
    Arg.(value & opt string "risc0"
         & info [ "backend"; "vm" ] ~docv:"NAME"
             ~doc:"Backend objective (see `zkbench backends`)")
  in
  let iters_arg =
    Arg.(value & opt int 160
         & info [ "iterations"; "iters" ] ~docv:"N"
             ~doc:"Genome evaluations (the paper's deep dives use 1600)")
  in
  let population_arg =
    Arg.(value & opt int 16
         & info [ "population" ] ~docv:"N" ~doc:"Genomes per generation")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Search seed")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Worker domains evaluating a generation in parallel \
                   (default: the recommended domain count; results are \
                   identical at any job count)")
  in
  let ckpt_arg =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"Append per-generation rows to FILE; rerunning with the \
                   same file resumes the search")
  in
  let fresh_arg =
    Arg.(value & flag
         & info [ "fresh" ]
             ~doc:"Ignore an existing checkpoint (default is to resume)")
  in
  let profile_out_arg =
    Arg.(value & opt (some string) None
         & info [ "profile-out" ] ~docv:"FILE"
             ~doc:"Write the winning sequence as a named-profile JSON file \
                   consumable by `zkbench sweepall --tuned`")
  in
  let no_prune_arg =
    Arg.(value & flag
         & info [ "no-prune" ]
             ~doc:"Disable prefix-estimate early exit (measure every \
                   non-deduped genome)")
  in
  let objective_arg =
    Arg.(value & opt string "cycles"
         & info [ "objective" ] ~docv:"NAME"
             ~doc:"Fitness the search minimizes: \"cycles\" (the backend's \
                   cycle count) or \"settled\" (end-to-end settlement \
                   micro-cost: prover + aggregation + verification gas)")
  in
  let run prog quick vm iters population seed jobs ckpt fresh profile_out
      no_prune objective =
    let w = find_workload prog in
    let build () = w.Zkopt_workloads.Workload.build (size_of_quick quick) in
    let b = resolve_backend vm in
    let jobs =
      match jobs with
      | Some n -> max 1 n
      | None -> Zkopt_exec.Pool.recommended_jobs ()
    in
    let artifacts = Zkopt_exec.Cache.create () in
    let target, unit_name =
      match objective with
      | "cycles" ->
        (A.backend_target ~cache:artifacts ~program:prog ~build b, "cycles")
      | "settled" ->
        ( A.settled_target ~cache:artifacts ~program:prog ~build b,
          "settled micro-units" )
      | o -> failwith ("unknown --objective " ^ o ^ " (cycles | settled)")
    in
    let cfg =
      {
        (A.default ~seed ~population ~iterations:iters ~jobs ()) with
        A.prune = not no_prune;
        checkpoint = ckpt;
        resume = not fresh;
      }
    in
    let o = A.search cfg ~targets:[ target ] in
    match o.A.result with
    | None ->
      Printf.eprintf "tune: stopped before completing a generation\n";
      exit 1
    | Some ga ->
      let best = ga.A.best in
      Printf.printf "tuned %s@%s: %d %s after %d evaluations (%d \
                     generations%s)\n"
        prog b.Backend.name best.A.fitness unit_name ga.A.evaluations
        (List.length ga.A.history)
        (if o.A.resumed > 0 then
           Printf.sprintf ", %d resumed from checkpoint" o.A.resumed
         else "");
      Printf.printf "  %s\n" (String.concat " -> " best.A.genome);
      let cs = o.A.cache_stats in
      Printf.printf
        "engine: %d measured, %d deduped, %d pruned, %d failed; prefix \
         cache %d hits / %d compiles (%.1f%% hit rate; %d jobs)\n"
        cs.A.measured cs.A.dedup_hits cs.A.pruned cs.A.failed
        cs.A.prefix.Zkopt_exec.Cache.hits cs.A.prefix.Zkopt_exec.Cache.misses
        (Zkopt_exec.Cache.hit_rate_pct cs.A.prefix)
        jobs;
      (match profile_out with
      | None -> ()
      | Some path -> (
        let e =
          Tuned.entry ~program:prog ~vm:b.Backend.name ~cycles:best.A.fitness
            best.A.genome
        in
        match Tuned.save path [ e ] with
        | Ok () -> Printf.printf "wrote %s (profile %S)\n" path e.Tuned.name
        | Error msg -> failwith ("--profile-out: " ^ msg)))
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:"Full-budget parallel pass-sequence search: generation-parallel \
             evaluation over a domain pool, prefix-cached compilation, \
             dedup/pruning, checkpoint/resume, and named-profile output \
             for the sweep matrix")
    Term.(const run $ prog_arg $ quick_arg $ vm_arg $ iters_arg
          $ population_arg $ seed_arg $ jobs_arg $ ckpt_arg $ fresh_arg
          $ profile_out_arg $ no_prune_arg $ objective_arg)

let backends_cmd =
  let run () =
    List.iter
      (fun (b : Backend.t) ->
        Printf.printf "%-8s %-10s schema %-12s %s\n" b.Backend.name
          (if b.Backend.zk_native then "zk-native" else "rv32")
          b.Backend.schema b.Backend.doc)
      (Registry.all ())
  in
  Cmd.v
    (Cmd.info "backends" ~doc:"List the registered zkVM backends")
    Term.(const run $ const ())

let asm_cmd =
  let run prog quick level pass zk_o3 =
    let w = find_workload prog in
    let build () = w.Zkopt_workloads.Workload.build (size_of_quick quick) in
    let profile = profile_of ~level ~pass ~zk_o3 in
    let m = build () in
    Zkopt_runtime.Runtime.link m;
    Profile.apply profile m;
    ignore (Zkopt_passes.Pass.run_one "globaldce" m);
    List.iter
      (fun f ->
        let unit_, _ = Zkopt_riscv.Codegen.lower_func m f in
        print_string (Zkopt_riscv.Asm.to_string unit_))
      m.Zkopt_ir.Modul.funcs
  in
  Cmd.v (Cmd.info "asm" ~doc:"Dump the generated RV32 assembly")
    Term.(const run $ prog_arg $ quick_arg $ level_arg $ pass_arg $ zk_o3_arg)

(* ---- the sweep service ----------------------------------------------- *)

module Serve_job = Zkopt_serve.Job
module Serve_proto = Zkopt_serve.Proto
module Serve_client = Zkopt_serve.Client

let dir_arg =
  Arg.(value & opt string "_zkserve"
       & info [ "dir" ] ~docv:"DIR"
           ~doc:"Service state directory (job registry, checkpoints, \
                 default socket)")

let sock_arg =
  Arg.(value & opt (some string) None
       & info [ "sock" ] ~docv:"PATH"
           ~doc:"Unix-domain socket path (default: DIR/zkbench.sock)")

let sock_of ~dir ~sock =
  match sock with Some p -> p | None -> Filename.concat dir "zkbench.sock"

let serve_cmd =
  let jobs_arg =
    Arg.(value & opt (some int) None
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Worker domains shared by every job (default: the \
                   recommended domain count of this machine)")
  in
  let run dir sock jobs =
    let jobs =
      match jobs with
      | Some n -> max 1 n
      | None -> Zkopt_exec.Pool.recommended_jobs ()
    in
    Zkopt_serve.Daemon.run ~jobs ?sock ~log:print_endline ~dir ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the persistent sweep service: a priority job queue over \
             one warm domain pool and compile cache, streaming rows to \
             clients over a unix socket; SIGTERM drains and a restart \
             resumes every unfinished job from its checkpoint")
    Term.(const run $ dir_arg $ sock_arg $ jobs_arg)

let submit_cmd =
  let kind_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"KIND"
             ~doc:"Job kind: sweep | profile | autotune | fuzz | settle")
  in
  let programs_arg =
    Arg.(value & opt (some string) None
         & info [ "programs" ] ~docv:"NAMES"
             ~doc:"Comma-separated programs (sweep; default: full suite)")
  in
  let profiles_arg =
    Arg.(value & opt (some string) None
         & info [ "profiles" ] ~docv:"NAMES"
             ~doc:"Comma-separated profiles (sweep; default: all 71)")
  in
  let backends_arg =
    Arg.(value & opt (some string) None
         & info [ "backends" ] ~docv:"NAMES"
             ~doc:"Comma-separated backends (default: per-kind default)")
  in
  let program_arg =
    Arg.(value & opt (some string) None
         & info [ "program" ] ~docv:"NAME"
             ~doc:"Program (profile/autotune kinds)")
  in
  let profile_arg =
    Arg.(value & opt string "baseline"
         & info [ "profile" ] ~docv:"NAME" ~doc:"Profile (profile kind)")
  in
  let vm_arg =
    Arg.(value & opt string "risc0"
         & info [ "vm" ] ~docv:"NAME"
             ~doc:"Backend (profile/autotune kinds)")
  in
  let iters_arg =
    Arg.(value & opt int 80
         & info [ "iters" ] ~docv:"N" ~doc:"GA evaluations (autotune kind)")
  in
  let seed_arg =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"N" ~doc:"GA seed (autotune kind)")
  in
  let population_arg =
    Arg.(value & opt int 16
         & info [ "population" ] ~docv:"N"
             ~doc:"Genomes per generation (autotune kind)")
  in
  let seeds_arg =
    Arg.(value & opt string "1..25"
         & info [ "seeds" ] ~docv:"LO..HI" ~doc:"Seed range (fuzz kind)")
  in
  let pipelines_arg =
    Arg.(value & opt string "baseline,O2,O3"
         & info [ "pipelines" ] ~docv:"SPECS"
             ~doc:"Comma-separated pipeline specs (fuzz kind)")
  in
  let limit_arg =
    Arg.(value & opt (some int) None
         & info [ "limit" ] ~docv:"N" ~doc:"Stop after N new cells/cases")
  in
  let priority_arg =
    Arg.(value & opt int 10
         & info [ "priority" ] ~docv:"N"
             ~doc:"Queue priority; lower runs sooner (FIFO within a \
                   priority)")
  in
  let budget_arg =
    Arg.(value & opt (some int) None
         & info [ "budget" ] ~docv:"N"
             ~doc:"Per-client failure budget shared by this connection's \
                   jobs")
  in
  let no_watch_arg =
    Arg.(value & flag
         & info [ "no-watch" ]
             ~doc:"Fire and forget: do not stream rows back (the job also \
                   survives this client disconnecting)")
  in
  let arity_arg =
    Arg.(value & opt int 8
         & info [ "arity" ] ~docv:"N"
             ~doc:"Aggregation fan-in (settle kind)")
  in
  let run dir sock kind programs profiles backends program profile vm iters
      seed population seeds pipelines limit priority budget no_watch arity
      quick =
    let spec =
      match kind with
      | "sweep" ->
        Serve_job.Sweep
          {
            programs = Option.map comma_list programs;
            profiles = Option.map comma_list profiles;
            quick;
            backends = Option.map comma_list backends;
            limit;
          }
      | "profile" -> (
        match program with
        | Some program -> Serve_job.Profile_cell { program; profile; vm; quick }
        | None -> failwith "profile jobs need --program")
      | "autotune" -> (
        match program with
        | Some program ->
          Serve_job.Autotune { program; iters; vm; quick; seed; population }
        | None -> failwith "autotune jobs need --program")
      | "fuzz" -> (
        match Zkopt_devutil.Seedfmt.range_of_string seeds with
        | Some (seed_lo, seed_hi) ->
          Serve_job.Fuzz
            {
              seed_lo;
              seed_hi;
              pipelines = comma_list pipelines;
              backends = Option.map comma_list backends;
              limit;
            }
        | None -> failwith ("bad --seeds range: " ^ seeds))
      | "settle" ->
        Serve_job.Settle
          {
            programs = Option.map comma_list programs;
            profiles = Option.map comma_list profiles;
            backends = Option.map comma_list backends;
            quick;
            arity;
          }
      | k -> failwith ("unknown job kind " ^ k)
    in
    let sock = sock_of ~dir ~sock in
    let result =
      Serve_client.with_connection sock (fun c ->
          Serve_client.submit_and_watch ~priority ?budget
            ~watch:(not no_watch)
            ~on_event:(function
              | Serve_proto.Row { data; _ } -> print_endline data
              | _ -> ())
            c spec)
    in
    match result with
    | Ok (id, `Done summary) ->
      if no_watch then Printf.printf "submitted %s (not watching)\n" id
      else Printf.printf "%s done: %s\n" id (Json.to_string summary)
    | Ok (id, `Failed msg) ->
      Printf.eprintf "%s failed: %s\n" id msg;
      exit 1
    | Error msg ->
      Printf.eprintf "submit: %s\n" msg;
      exit 1
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Submit a job (sweep | profile | autotune | fuzz | settle) to \
             a running `zkbench serve` daemon and stream its rows back")
    Term.(const run $ dir_arg $ sock_arg $ kind_arg $ programs_arg
          $ profiles_arg $ backends_arg $ program_arg $ profile_arg $ vm_arg
          $ iters_arg $ seed_arg $ population_arg $ seeds_arg $ pipelines_arg
          $ limit_arg $ priority_arg $ budget_arg $ no_watch_arg $ arity_arg
          $ quick_arg)

let status_cmd =
  let json_flag =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Print the raw status JSON")
  in
  let run dir sock json =
    let sock = sock_of ~dir ~sock in
    let result =
      Serve_client.with_connection sock (fun c ->
          match Serve_client.send c Serve_proto.Status with
          | Error e -> Error e
          | Ok () -> (
            match Serve_client.recv c with
            | Ok (Serve_proto.Status_report s) -> Ok s
            | Ok _ -> Error "unexpected reply to status"
            | Error `Eof -> Error "daemon closed the connection"
            | Error (`Bad msg) -> Error msg))
    in
    match result with
    | Error msg ->
      Printf.eprintf "status: %s\n" msg;
      exit 1
    | Ok s ->
      if json then print_endline (Json.to_string s)
      else begin
        (match Json.member "jobs" s with
        | Some (Json.Arr jobs) ->
          Printf.printf "%-8s %-9s %-10s %5s %5s %s\n" "id" "kind" "state"
            "prio" "rows" "client";
          List.iter
            (fun j ->
              let str k = Option.value ~default:"?" (Json.str_member k j) in
              let int k = Option.value ~default:0 (Json.int_member k j) in
              Printf.printf "%-8s %-9s %-10s %5d %5d %s\n" (str "id")
                (str "kind") (str "state") (int "priority") (int "rows")
                (str "client"))
            jobs
        | _ -> ());
        match Json.member "cache" s with
        | Some cache ->
          let int k = Option.value ~default:0 (Json.int_member k cache) in
          Printf.printf
            "cache: %d mem + %d disk hits, %d compiles, %d evictions, %d \
             resident\n"
            (int "hits") (int "disk_hits") (int "misses") (int "evictions")
            (int "resident")
        | None -> ()
      end
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:"Show a running daemon's jobs and shared compile-cache \
             hit/miss/evict counters")
    Term.(const run $ dir_arg $ sock_arg $ json_flag)

let shutdown_cmd =
  let run dir sock =
    let sock = sock_of ~dir ~sock in
    let result =
      Serve_client.with_connection sock (fun c ->
          match Serve_client.send c Serve_proto.Shutdown with
          | Error e -> Error e
          | Ok () -> (
            match Serve_client.recv c with
            | Ok (Serve_proto.Ack _) | Error `Eof -> Ok ()
            | Ok _ -> Ok ()
            | Error (`Bad msg) -> Error msg))
    in
    match result with
    | Ok () -> print_endline "daemon draining (unfinished jobs resume on restart)"
    | Error msg ->
      Printf.eprintf "shutdown: %s\n" msg;
      exit 1
  in
  Cmd.v
    (Cmd.info "shutdown"
       ~doc:"Ask a running daemon to drain gracefully: the running job \
             checkpoints at its next cell boundary and everything \
             unfinished resumes when the daemon restarts")
    Term.(const run $ dir_arg $ sock_arg)

(* ---- throughput baseline --------------------------------------------- *)

let bench_cmd =
  let module H = Zkopt_harness.Harness in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Output path (default: BENCH_<date>.json)")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None
         & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Worker domains")
  in
  (* the fixed slice: small misc programs x the standard levels, so the
     baseline is comparable across commits *)
  let slice_programs = [ "factorial"; "loop-sum"; "sha256"; "tailcall" ] in
  let slice_profiles = [ "baseline"; "-O1"; "-O2"; "-O3" ] in
  let run out jobs =
    let jobs =
      match jobs with
      | Some n -> max 1 n
      | None -> Zkopt_exec.Pool.recommended_jobs ()
    in
    let cache = Zkopt_exec.Cache.create ?dir:None () in
    let profiles = List.map profile_by_name slice_profiles in
    let phase name =
      let t0 = Unix.gettimeofday () in
      let before = Zkopt_exec.Cache.stats cache in
      let cfg =
        {
          (H.default ~size:Zkopt_workloads.Workload.Quick) with
          H.programs = Some slice_programs;
          profiles = Some profiles;
          jobs;
          cache = Some cache;
        }
      in
      let o = H.run cfg in
      let dt = Unix.gettimeofday () -. t0 in
      let cells = Hashtbl.length o.H.points in
      let s =
        Zkopt_exec.Cache.sub_stats (Zkopt_exec.Cache.stats cache) before
      in
      Printf.printf
        "%-10s %3d cells in %6.2fs  (%6.2f cells/s, cache %.1f%%)\n" name
        cells dt
        (float_of_int cells /. dt)
        (Zkopt_exec.Cache.hit_rate_pct s);
      Json.Obj
        [
          ("family", Json.Str name);
          ("cells", Json.Int cells);
          ("avg_seconds", Json.Float (dt /. float_of_int (max 1 cells)));
          ("cells_per_second", Json.Float (float_of_int cells /. dt));
          ("cache_hit_rate_pct", Json.Float (Zkopt_exec.Cache.hit_rate_pct s));
        ]
    in
    let cold = phase "sweep-cold" in
    let warm = phase "sweep-warm" in
    (* pure-interpreter throughput: decode each slice program once, then
       time repeated Machine.run passes.  No compile, no cache, no prover
       model — this row isolates the decoded-stream executor core, so
       interpreter wins stay visible independent of cache hit rate. *)
    let emul =
      let codes =
        List.map
          (fun name ->
            let w = find_workload name in
            let build () =
              w.Zkopt_workloads.Workload.build Zkopt_workloads.Workload.Quick
            in
            let c = Measure.prepare ~build Profile.Baseline in
            Zkopt_zkvm.Machine.decode Zkopt_zkvm.Config.risc0
              c.Measure.codegen c.Measure.modul)
          slice_programs
      in
      let t0 = Unix.gettimeofday () in
      let retired = ref 0 in
      let passes = ref 0 in
      while Unix.gettimeofday () -. t0 < 1.0 do
        List.iter
          (fun code ->
            let r = Zkopt_zkvm.Machine.run code in
            retired := !retired + r.Zkopt_zkvm.Machine.retired)
          codes;
        incr passes
      done;
      let dt = Unix.gettimeofday () -. t0 in
      let ips = float_of_int !retired /. dt in
      Printf.printf "%-10s %3d passes in %6.2fs  (%6.2f M instrs/s)\n" "emul"
        !passes dt (ips /. 1e6);
      Json.Obj
        [
          ("family", Json.Str "emul");
          ("programs", Json.Int (List.length codes));
          ("passes", Json.Int !passes);
          ("retired", Json.Int !retired);
          ("instrs_per_second", Json.Float ips);
        ]
    in
    let date =
      let tm = Unix.localtime (Unix.time ()) in
      Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900)
        (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
    in
    let doc =
      Json.Obj
        [
          ("schema", Json.Str "zkbench-bench-v1");
          ("date", Json.Str date);
          ("machine", Json.Str (Zkopt_exec.Pool.machine_fingerprint ()));
          ("jobs", Json.Int jobs);
          ( "slice",
            Json.Obj
              [
                ( "programs",
                  Json.Arr (List.map (fun p -> Json.Str p) slice_programs) );
                ( "profiles",
                  Json.Arr (List.map (fun p -> Json.Str p) slice_profiles) );
              ] );
          ("rows", Json.Arr [ cold; warm; emul ]);
        ]
    in
    let path =
      match out with Some p -> p | None -> "BENCH_" ^ date ^ ".json"
    in
    let oc = open_out path in
    output_string oc (Json.to_string doc);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Measure sweep throughput (cells/second) on a fixed slice, \
             cold and warm compile cache, and emit a BENCH_<date>.json \
             baseline")
    Term.(const run $ out_arg $ jobs_arg)

let () =
  let info =
    Cmd.info "zkbench" ~version:"1.0"
      ~doc:"Measure compiler-optimization impact on simulated zkVMs"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; passes_cmd; backends_cmd; run_cmd; profile_cmd;
            sweep_cmd; sweepall_cmd; settle_cmd; fuzz_cmd; autotune_cmd;
            tune_cmd; asm_cmd; serve_cmd; submit_cmd; status_cmd;
            shutdown_cmd; bench_cmd ]))
